#include "flowdb/flowdb.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unordered_map>

namespace gq::flowdb {

namespace {

constexpr std::uint64_t align8(std::uint64_t x) { return (x + 7) & ~7ull; }

/// The fixed column schema, in cols_[] order. A v1 store must carry all
/// of these (extra columns are skipped); types are validated on open.
struct ColumnSpec {
  const char* name;
  ColumnType type;
  std::uint32_t elem;
};
constexpr ColumnSpec kColumns[] = {
    {"proto", ColumnType::kU8, 1},     {"src_addr", ColumnType::kU32, 4},
    {"src_port", ColumnType::kU16, 2}, {"dst_addr", ColumnType::kU32, 4},
    {"dst_port", ColumnType::kU16, 2}, {"vlan", ColumnType::kU16, 2},
    {"tenant", ColumnType::kU32, 4},   {"job", ColumnType::kU64, 8},
    {"verdict", ColumnType::kU8, 1},   {"vsrc", ColumnType::kU8, 1},
    {"policy", ColumnType::kU32, 4},   {"tap", ColumnType::kU32, 4},
    {"packets", ColumnType::kU64, 8},  {"bytes", ColumnType::kU64, 8},
    {"first_usec", ColumnType::kI64, 8}, {"last_usec", ColumnType::kI64, 8},
    {"loc_start", ColumnType::kU64, 8}, {"loc_count", ColumnType::kU32, 4},
};
constexpr std::size_t kColumnCount = std::size(kColumns);
static_assert(kColumnCount == 18);

std::uint32_t elem_size_for(std::uint32_t type) {
  switch (static_cast<ColumnType>(type)) {
    case ColumnType::kU8: return 1;
    case ColumnType::kU16: return 2;
    case ColumnType::kU32: return 4;
    case ColumnType::kU64: return 8;
    case ColumnType::kI64: return 8;
  }
  return 0;
}

template <typename T>
void append_raw(std::vector<std::uint8_t>& out, const T* data,
                std::size_t count) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + count * sizeof(T));
}

void pad_to(std::vector<std::uint8_t>& out, std::uint64_t offset) {
  out.resize(offset, 0);
}

std::uint64_t fnv1a_tagged(std::uint8_t tag, const std::uint8_t* data,
                          std::size_t len) {
  std::uint64_t hash = 1469598103934665603ull;
  hash ^= tag;
  hash *= 1099511628211ull;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

/// The column arrays a zone block is derived from. Shared between the
/// writer (sealing) and the reader (recompute-verify at load), so both
/// sides produce bit-identical zone bytes by construction.
struct ZoneInputs {
  std::uint64_t n = 0;
  const std::int64_t* first = nullptr;
  const std::int64_t* last = nullptr;
  const std::uint16_t* vlan = nullptr;
  const std::uint16_t* sport = nullptr;
  const std::uint16_t* dport = nullptr;
  const std::uint64_t* packets = nullptr;
  const std::uint64_t* bytes = nullptr;
  const std::uint32_t* saddr = nullptr;
  const std::uint32_t* daddr = nullptr;
  const std::uint32_t* tenant = nullptr;
};

template <typename DictFn>
ZoneMap compute_zone(const ZoneInputs& in, DictFn&& dict) {
  ZoneMap z{};
  z.row_count = in.n;
  // Empty-range sentinels; never consulted when row_count == 0.
  z.min_first_usec = std::numeric_limits<std::int64_t>::max();
  z.max_last_usec = std::numeric_limits<std::int64_t>::min();
  z.min_vlan = 0xFFFF;
  z.max_vlan = 0;
  z.min_port = 0xFFFF;
  z.max_port = 0;
  z.min_packets = std::numeric_limits<std::uint64_t>::max();
  z.max_packets = 0;
  z.min_bytes = std::numeric_limits<std::uint64_t>::max();
  z.max_bytes = 0;
  for (std::uint64_t i = 0; i < in.n; ++i) {
    z.min_first_usec = std::min(z.min_first_usec, in.first[i]);
    z.max_last_usec = std::max(z.max_last_usec, in.last[i]);
    z.min_vlan = std::min(z.min_vlan, in.vlan[i]);
    z.max_vlan = std::max(z.max_vlan, in.vlan[i]);
    z.min_port = std::min({z.min_port, in.sport[i], in.dport[i]});
    z.max_port = std::max({z.max_port, in.sport[i], in.dport[i]});
    z.min_packets = std::min(z.min_packets, in.packets[i]);
    z.max_packets = std::max(z.max_packets, in.packets[i]);
    z.min_bytes = std::min(z.min_bytes, in.bytes[i]);
    z.max_bytes = std::max(z.max_bytes, in.bytes[i]);
    bloom_add(z.bloom, bloom_key_tenant(dict(in.tenant[i])));
    bloom_add(z.bloom, bloom_key_endpoint(in.saddr[i]));
    bloom_add(z.bloom, bloom_key_endpoint(in.daddr[i]));
  }
  return z;
}

std::vector<ChunkZone> compute_chunk_zones(std::uint64_t n,
                                           const std::int64_t* first,
                                           const std::int64_t* last) {
  const std::uint64_t chunks = (n + kScanChunk - 1) / kScanChunk;
  std::vector<ChunkZone> zones(chunks);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t begin = c * kScanChunk;
    const std::uint64_t end = std::min(n, begin + kScanChunk);
    ChunkZone& z = zones[c];
    z.min_first_usec = first[begin];
    z.max_last_usec = last[begin];
    for (std::uint64_t i = begin + 1; i < end; ++i) {
      z.min_first_usec = std::min(z.min_first_usec, first[i]);
      z.max_last_usec = std::max(z.max_last_usec, last[i]);
    }
  }
  return zones;
}

}  // namespace

std::uint64_t bloom_key_tenant(std::string_view name) {
  return fnv1a_tagged(
      'T', reinterpret_cast<const std::uint8_t*>(name.data()), name.size());
}

std::uint64_t bloom_key_endpoint(std::uint32_t addr_value) {
  std::uint8_t bytes[4];
  std::memcpy(bytes, &addr_value, 4);
  return fnv1a_tagged('A', bytes, 4);
}

void bloom_add(std::uint8_t* bloom, std::uint64_t key) {
  const std::uint64_t h1 = key;
  const std::uint64_t h2 = (key >> 33) | 1;  // Odd stride covers all bits.
  for (unsigned k = 0; k < kBloomHashes; ++k) {
    const std::uint64_t bit = (h1 + k * h2) % kBloomBits;
    bloom[bit >> 3] |= static_cast<std::uint8_t>(1u << (bit & 7));
  }
}

bool bloom_may_contain(const std::uint8_t* bloom, std::uint64_t key) {
  const std::uint64_t h1 = key;
  const std::uint64_t h2 = (key >> 33) | 1;
  for (unsigned k = 0; k < kBloomHashes; ++k) {
    const std::uint64_t bit = (h1 + k * h2) % kBloomBits;
    if (!(bloom[bit >> 3] & (1u << (bit & 7)))) return false;
  }
  return true;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

Row row_from(const trace::FlowRecord& record, std::string_view tap_name) {
  Row row;
  row.proto = record.key.proto;
  row.src = record.key.src;
  row.dst = record.key.dst;
  row.vlan = record.vlan;
  row.tenant = record.tenant;
  row.job = record.job;
  if (record.has_verdict) {
    row.verdict = static_cast<std::uint8_t>(record.verdict);
    row.source = static_cast<std::uint8_t>(record.verdict_source);
  }
  row.policy = record.policy_name;
  row.tap = std::string(tap_name);
  row.packets = record.packets;
  row.bytes = record.bytes;
  row.first_usec = record.first_time.usec;
  row.last_usec = record.last_time.usec;
  row.locations = record.locations;
  return row;
}

Writer::Writer(obs::MetricsRegistry* metrics) : metrics_(metrics) {}

void Writer::add(Row row) { rows_.push_back(std::move(row)); }

void Writer::add_index(const trace::FlowIndex& index,
                       std::string_view tap_name) {
  for (const auto& record : index.flows()) add(row_from(record, tap_name));
}

void Writer::add_tap(const trace::TraceTap& tap) {
  add_index(tap.index(), tap.name());
}

std::vector<std::uint8_t> Writer::encode() const {
  const std::uint64_t n = rows_.size();

  // Intern tenant/policy/tap names; id 0 is the empty string.
  std::vector<std::string_view> dict{""};
  std::unordered_map<std::string_view, std::uint32_t> ids{{"", 0}};
  auto intern = [&](const std::string& s) -> std::uint32_t {
    auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(dict.size());
    dict.push_back(s);
    ids.emplace(dict.back(), id);
    return id;
  };

  // Build the typed column arrays and the shared location array.
  std::vector<std::uint8_t> c_proto(n), c_verdict(n), c_vsrc(n);
  std::vector<std::uint16_t> c_sport(n), c_dport(n), c_vlan(n);
  std::vector<std::uint32_t> c_saddr(n), c_daddr(n), c_tenant(n),
      c_policy(n), c_tap(n), c_loc_count(n);
  std::vector<std::uint64_t> c_job(n), c_packets(n), c_bytes(n),
      c_loc_start(n);
  std::vector<std::int64_t> c_first(n), c_last(n);
  std::vector<LocEntry> locs;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Row& row = rows_[i];
    c_proto[i] = static_cast<std::uint8_t>(row.proto);
    c_saddr[i] = row.src.addr.value();
    c_sport[i] = row.src.port;
    c_daddr[i] = row.dst.addr.value();
    c_dport[i] = row.dst.port;
    c_vlan[i] = row.vlan;
    c_tenant[i] = intern(row.tenant);
    c_job[i] = row.job;
    c_verdict[i] = row.verdict;
    c_vsrc[i] = row.source;
    c_policy[i] = intern(row.policy);
    c_tap[i] = intern(row.tap);
    c_packets[i] = row.packets;
    c_bytes[i] = row.bytes;
    c_first[i] = row.first_usec;
    c_last[i] = row.last_usec;
    c_loc_start[i] = locs.size();
    c_loc_count[i] = static_cast<std::uint32_t>(row.locations.size());
    for (const auto& loc : row.locations)
      locs.push_back({loc.segment, loc.offset});
  }
  const void* column_data[kColumnCount] = {
      c_proto.data(),  c_saddr.data(),   c_sport.data(), c_daddr.data(),
      c_dport.data(),  c_vlan.data(),    c_tenant.data(), c_job.data(),
      c_verdict.data(), c_vsrc.data(),   c_policy.data(), c_tap.data(),
      c_packets.data(), c_bytes.data(),  c_first.data(),  c_last.data(),
      c_loc_start.data(), c_loc_count.data(),
  };

  // Dictionary entries + blob.
  std::vector<DictEntry> entries(dict.size());
  std::string blob;
  for (std::size_t i = 0; i < dict.size(); ++i) {
    entries[i].offset = blob.size();
    entries[i].len = dict[i].size();
    blob.append(dict[i]);
  }

  // Lay out offsets: header, column table, dict entries, locations,
  // column data, blob, footer — every region 8-aligned.
  FileHeader header;
  header.column_count = static_cast<std::uint32_t>(kColumnCount);
  header.row_count = n;
  header.columns_offset = align8(sizeof(FileHeader));
  header.dict_offset =
      align8(header.columns_offset + kColumnCount * sizeof(ColumnDesc));
  header.dict_count = entries.size();
  header.loc_offset =
      align8(header.dict_offset + entries.size() * sizeof(DictEntry));
  header.loc_count = locs.size();
  std::uint64_t cursor =
      align8(header.loc_offset + locs.size() * sizeof(LocEntry));
  ColumnDesc descs[kColumnCount] = {};
  for (std::size_t c = 0; c < kColumnCount; ++c) {
    std::strncpy(descs[c].name, kColumns[c].name, sizeof(descs[c].name) - 1);
    descs[c].type = static_cast<std::uint32_t>(kColumns[c].type);
    descs[c].elem_size = kColumns[c].elem;
    descs[c].offset = cursor;
    cursor = align8(cursor + n * kColumns[c].elem);
  }
  header.blob_offset = cursor;
  header.blob_bytes = blob.size();

  // v2 zone block: file-level min/max + bloom, then per-chunk time
  // bounds. Derived purely from the column arrays above — the reader
  // recomputes and compares at load time.
  const ZoneInputs zone_in{n,
                           c_first.data(),
                           c_last.data(),
                           c_vlan.data(),
                           c_sport.data(),
                           c_dport.data(),
                           c_packets.data(),
                           c_bytes.data(),
                           c_saddr.data(),
                           c_daddr.data(),
                           c_tenant.data()};
  const ZoneMap zone =
      compute_zone(zone_in, [&](std::uint32_t id) { return dict[id]; });
  const std::vector<ChunkZone> chunk_zones =
      compute_chunk_zones(n, c_first.data(), c_last.data());
  header.zone_offset = align8(header.blob_offset + blob.size());
  header.zone_bytes =
      sizeof(ZoneMap) + chunk_zones.size() * sizeof(ChunkZone);
  header.footer_offset = align8(header.zone_offset + header.zone_bytes);

  std::vector<std::uint8_t> out;
  out.reserve(header.footer_offset + 16);
  append_raw(out, &header, 1);
  pad_to(out, header.columns_offset);
  append_raw(out, descs, kColumnCount);
  pad_to(out, header.dict_offset);
  append_raw(out, entries.data(), entries.size());
  pad_to(out, header.loc_offset);
  append_raw(out, locs.data(), locs.size());
  for (std::size_t c = 0; c < kColumnCount; ++c) {
    pad_to(out, descs[c].offset);
    append_raw(out, static_cast<const std::uint8_t*>(column_data[c]),
               n * kColumns[c].elem);
  }
  pad_to(out, header.blob_offset);
  append_raw(out, blob.data(), blob.size());
  pad_to(out, header.zone_offset);
  append_raw(out, &zone, 1);
  append_raw(out, chunk_zones.data(), chunk_zones.size());
  pad_to(out, header.footer_offset);
  const std::uint64_t hash = fnv1a(out);
  append_raw(out, &hash, 1);
  append_raw(out, &kEndMagic, 1);

  if (metrics_) {
    metrics_->counter("flowdb.rows_written").inc(n);
    metrics_->counter("flowdb.bytes_written").inc(out.size());
  }
  return out;
}

bool Writer::save(const std::string& path) const {
  const auto bytes = encode();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (ok && closed && metrics_) metrics_->counter("flowdb.files_written").inc();
  return ok && closed;
}

// --- Reader ---------------------------------------------------------------

Reader::Reader(Reader&& other) noexcept { *this = std::move(other); }

Reader& Reader::operator=(Reader&& other) noexcept {
  if (this == &other) return *this;
  reset();
  base_ = other.base_;
  size_ = other.size_;
  owned_ = std::move(other.owned_);
  map_ = other.map_;
  map_len_ = other.map_len_;
  rows_ = other.rows_;
  dict_count_ = other.dict_count_;
  dict_entries_ = other.dict_entries_;
  blob_ = other.blob_;
  blob_bytes_ = other.blob_bytes_;
  locs_ = other.locs_;
  loc_count_total_ = other.loc_count_total_;
  zone_ = other.zone_;
  chunk_zones_ = other.chunk_zones_;
  chunk_count_ = other.chunk_count_;
  std::memcpy(cols_, other.cols_, sizeof(cols_));
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.base_ = nullptr;
  return *this;
}

Reader::~Reader() { reset(); }

void Reader::reset() noexcept {
  if (map_) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
  owned_.clear();
  base_ = nullptr;
  size_ = 0;
}

std::optional<Reader> Reader::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return std::nullopt;
  }
  const auto len = static_cast<std::uint64_t>(st.st_size);
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping outlives the descriptor.
  if (map == MAP_FAILED) return std::nullopt;

  Reader reader;
  reader.map_ = map;
  reader.map_len_ = len;
  reader.base_ = static_cast<const std::uint8_t*>(map);
  reader.size_ = len;
  if (!reader.validate_and_index()) return std::nullopt;
  return reader;
}

std::optional<Reader> Reader::parse(std::vector<std::uint8_t> bytes) {
  Reader reader;
  reader.owned_ = std::move(bytes);
  reader.base_ = reader.owned_.data();
  reader.size_ = reader.owned_.size();
  if (!reader.validate_and_index()) return std::nullopt;
  return reader;
}

bool Reader::validate_and_index() {
  // Bounds check helper, overflow-safe: `count` elements of `elem`
  // bytes starting at `off` must sit inside [0, limit).
  const auto region_ok = [](std::uint64_t off, std::uint64_t count,
                            std::uint64_t elem, std::uint64_t limit) {
    return off <= limit && elem > 0 && count <= (limit - off) / elem;
  };

  if (size_ < sizeof(FileHeader) + 16) return false;
  FileHeader h;
  std::memcpy(&h, base_, sizeof h);
  if (h.magic != kMagic || h.version != kVersion) return false;
  // The self-declared footer offset must agree with the real file size
  // (a store that lies about its own length is rejected, not trusted).
  if (h.footer_offset != size_ - 16 || h.footer_offset < sizeof(FileHeader))
    return false;
  std::uint64_t stored_hash = 0, end_magic = 0;
  std::memcpy(&stored_hash, base_ + h.footer_offset, 8);
  std::memcpy(&end_magic, base_ + h.footer_offset + 8, 8);
  if (end_magic != kEndMagic) return false;
  if (fnv1a({base_, h.footer_offset}) != stored_hash) return false;

  const std::uint64_t limit = h.footer_offset;
  if (h.columns_offset % 8 != 0 ||
      !region_ok(h.columns_offset, h.column_count, sizeof(ColumnDesc), limit))
    return false;
  if (h.dict_offset % 8 != 0 ||
      !region_ok(h.dict_offset, h.dict_count, sizeof(DictEntry), limit))
    return false;
  if (h.loc_offset % 8 != 0 ||
      !region_ok(h.loc_offset, h.loc_count, sizeof(LocEntry), limit))
    return false;
  if (!region_ok(h.blob_offset, h.blob_bytes, 1, limit)) return false;
  // v2 zone block: the declared size must match the chunk grid exactly.
  // row_count > limit can never validate (every column needs >= 1 byte
  // per row) and would overflow the chunk arithmetic below.
  if (h.row_count > limit) return false;
  const std::uint64_t chunk_count =
      (h.row_count + kScanChunk - 1) / kScanChunk;
  if (h.zone_offset % 8 != 0 ||
      !region_ok(h.zone_offset, h.zone_bytes, 1, limit))
    return false;
  if (h.zone_bytes != sizeof(ZoneMap) + chunk_count * sizeof(ChunkZone))
    return false;

  // Resolve the known columns by name; every one must be present with
  // the right type, correctly aligned, and fully inside the file.
  // Unknown extra columns are skipped (forward compatibility).
  bool found[kColumnCount] = {};
  const auto* descs =
      reinterpret_cast<const ColumnDesc*>(base_ + h.columns_offset);
  for (std::uint32_t c = 0; c < h.column_count; ++c) {
    ColumnDesc d;
    std::memcpy(&d, &descs[c], sizeof d);
    if (d.name[sizeof(d.name) - 1] != '\0') return false;
    if (d.elem_size == 0 || d.elem_size != elem_size_for(d.type))
      return false;
    if (d.offset % d.elem_size != 0 ||
        !region_ok(d.offset, h.row_count, d.elem_size, limit))
      return false;
    for (std::size_t k = 0; k < kColumnCount; ++k) {
      if (std::strcmp(d.name, kColumns[k].name) != 0) continue;
      if (d.type != static_cast<std::uint32_t>(kColumns[k].type) ||
          found[k])
        return false;
      found[k] = true;
      cols_[k] = base_ + d.offset;
      break;
    }
  }
  for (const bool f : found)
    if (!f) return false;

  // Dictionary entries must stay inside the blob.
  const auto* entries =
      reinterpret_cast<const DictEntry*>(base_ + h.dict_offset);
  for (std::uint64_t i = 0; i < h.dict_count; ++i) {
    DictEntry e;
    std::memcpy(&e, &entries[i], sizeof e);
    if (e.offset > h.blob_bytes || e.len > h.blob_bytes - e.offset)
      return false;
  }

  rows_ = h.row_count;
  dict_count_ = h.dict_count;
  dict_entries_ = entries;
  blob_ = reinterpret_cast<const char*>(base_ + h.blob_offset);
  blob_bytes_ = h.blob_bytes;
  locs_ = reinterpret_cast<const LocEntry*>(base_ + h.loc_offset);
  loc_count_total_ = h.loc_count;
  zone_ = reinterpret_cast<const ZoneMap*>(base_ + h.zone_offset);
  chunk_zones_ = reinterpret_cast<const ChunkZone*>(
      base_ + h.zone_offset + sizeof(ZoneMap));
  chunk_count_ = chunk_count;

  // The zone block is derived data: recompute it from the (validated)
  // columns and require byte equality. A footer-resealed zone map that
  // lies about its bounds — and could make the planner prune rows the
  // file actually contains — is rejected here, at load time.
  const ZoneInputs zone_in{
      rows_,
      static_cast<const std::int64_t*>(cols_[14]),
      static_cast<const std::int64_t*>(cols_[15]),
      static_cast<const std::uint16_t*>(cols_[5]),
      static_cast<const std::uint16_t*>(cols_[2]),
      static_cast<const std::uint16_t*>(cols_[4]),
      static_cast<const std::uint64_t*>(cols_[12]),
      static_cast<const std::uint64_t*>(cols_[13]),
      static_cast<const std::uint32_t*>(cols_[1]),
      static_cast<const std::uint32_t*>(cols_[3]),
      static_cast<const std::uint32_t*>(cols_[6])};
  const ZoneMap want_zone = compute_zone(
      zone_in, [this](std::uint32_t id) { return dict(id); });
  if (std::memcmp(zone_, &want_zone, sizeof(ZoneMap)) != 0) return false;
  const std::vector<ChunkZone> want_chunks =
      compute_chunk_zones(rows_, zone_in.first, zone_in.last);
  if (chunk_count_ > 0 &&
      std::memcmp(chunk_zones_, want_chunks.data(),
                  chunk_count_ * sizeof(ChunkZone)) != 0)
    return false;
  return true;
}

#define GQ_FDB_COLUMN(method, type, index)                      \
  std::span<const type> Reader::method() const {                \
    return {static_cast<const type*>(cols_[index]), rows_};     \
  }
GQ_FDB_COLUMN(proto, std::uint8_t, 0)
GQ_FDB_COLUMN(src_addr, std::uint32_t, 1)
GQ_FDB_COLUMN(src_port, std::uint16_t, 2)
GQ_FDB_COLUMN(dst_addr, std::uint32_t, 3)
GQ_FDB_COLUMN(dst_port, std::uint16_t, 4)
GQ_FDB_COLUMN(vlan, std::uint16_t, 5)
GQ_FDB_COLUMN(tenant, std::uint32_t, 6)
GQ_FDB_COLUMN(job, std::uint64_t, 7)
GQ_FDB_COLUMN(verdict, std::uint8_t, 8)
GQ_FDB_COLUMN(verdict_source, std::uint8_t, 9)
GQ_FDB_COLUMN(policy, std::uint32_t, 10)
GQ_FDB_COLUMN(tap, std::uint32_t, 11)
GQ_FDB_COLUMN(packets, std::uint64_t, 12)
GQ_FDB_COLUMN(bytes, std::uint64_t, 13)
GQ_FDB_COLUMN(first_usec, std::int64_t, 14)
GQ_FDB_COLUMN(last_usec, std::int64_t, 15)
GQ_FDB_COLUMN(loc_start, std::uint64_t, 16)
GQ_FDB_COLUMN(loc_count, std::uint32_t, 17)
#undef GQ_FDB_COLUMN

std::string_view Reader::dict(std::uint32_t id) const {
  if (id >= dict_count_) return {};
  DictEntry e;
  std::memcpy(&e, &dict_entries_[id], sizeof e);
  return {blob_ + e.offset, static_cast<std::size_t>(e.len)};
}

std::optional<std::uint32_t> Reader::dict_id(std::string_view name) const {
  for (std::uint64_t i = 0; i < dict_count_; ++i)
    if (dict(static_cast<std::uint32_t>(i)) == name)
      return static_cast<std::uint32_t>(i);
  return std::nullopt;
}

std::span<const LocEntry> Reader::locations_of(std::uint64_t row) const {
  if (row >= rows_) return {};
  const std::uint64_t start = loc_start()[row];
  if (start >= loc_count_total_) return {};
  const std::uint64_t count =
      std::min<std::uint64_t>(loc_count()[row], loc_count_total_ - start);
  return {locs_ + start, static_cast<std::size_t>(count)};
}

Row Reader::row(std::uint64_t index) const {
  Row row;
  if (index >= rows_) return row;
  row.proto = static_cast<pkt::FlowProto>(proto()[index]);
  row.src = {util::Ipv4Addr(src_addr()[index]), src_port()[index]};
  row.dst = {util::Ipv4Addr(dst_addr()[index]), dst_port()[index]};
  row.vlan = vlan()[index];
  row.tenant = std::string(dict(tenant()[index]));
  row.job = job()[index];
  row.verdict = verdict()[index];
  row.source = verdict_source()[index];
  row.policy = std::string(dict(policy()[index]));
  row.tap = std::string(dict(tap()[index]));
  row.packets = packets()[index];
  row.bytes = bytes()[index];
  row.first_usec = first_usec()[index];
  row.last_usec = last_usec()[index];
  for (const auto& loc : locations_of(index))
    row.locations.push_back({loc.segment, loc.offset});
  return row;
}

}  // namespace gq::flowdb
