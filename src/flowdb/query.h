// FlowDB query engine: composable predicates, a chunked parallel scan,
// aggregation kernels, and the cross-run verdict-distribution diff
// (DESIGN.md §14).
//
// Determinism contract: scan() partitions the store into fixed
// kScanChunk-row chunks, assigns chunk c to thread (c % threads), and
// concatenates per-chunk match lists in chunk order — so the result is
// bit-identical to the serial scan at any thread count. The ctest lane
// (flowdb_smoke) and the s7 bench both assert this at 1/2/4 threads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flowdb/flowdb.h"
#include "obs/metrics.h"
#include "packet/frame.h"
#include "util/addr.h"

namespace gq::flowdb {

// kScanChunk lives in flowdb.h since format v2 (the chunk grid is part
// of the file format: one ChunkZone per kScanChunk rows).

/// A conjunction of optional predicates; unset fields match everything.
/// String fields are compiled to dictionary ids once per scan — a name
/// absent from the store's dictionary matches nothing, it is not an
/// error.
struct Filter {
  /// Raw verdict column value: 0 = never annotated, else shim::Verdict.
  std::optional<std::uint8_t> verdict;
  /// shim::VerdictSource of annotated flows.
  std::optional<std::uint8_t> source;
  std::optional<std::string> tenant;
  std::optional<std::string> policy;
  std::optional<std::string> tap;
  std::optional<std::uint64_t> job;
  std::optional<std::uint16_t> vlan;
  std::optional<pkt::FlowProto> proto;
  /// Exact endpoint address, source OR destination side.
  std::optional<util::Ipv4Addr> endpoint;
  /// Prefix containment, source OR destination side.
  std::optional<util::Ipv4Net> prefix;
  /// Port match, source OR destination side.
  std::optional<std::uint16_t> port;
  /// Time-window overlap: match flows with last >= since and
  /// first <= until (either bound may be unset).
  std::optional<std::int64_t> since_usec;
  std::optional<std::int64_t> until_usec;
};

/// What a (possibly pruned) scan actually touched. Filled by scan()
/// and SegmentedReader::scan() when ScanOptions::stats is set;
/// `gq_trace query`/`stat` print these and the same values feed the
/// flowdb.scan.* obs counters.
struct ScanStats {
  std::uint64_t segments_considered = 0;
  std::uint64_t segments_pruned = 0;   ///< Skipped without mapping.
  std::uint64_t segments_scanned = 0;
  std::uint64_t chunks_pruned = 0;     ///< Skipped by ChunkZone time bounds.
  std::uint64_t chunks_scanned = 0;
  std::uint64_t rows_scanned = 0;      ///< Rows actually visited.
  std::uint64_t rows_matched = 0;
  double wall_ms = 0.0;

  void add_to(obs::MetricsRegistry& metrics) const;
};

struct ScanOptions {
  /// Worker threads; <= 1 scans serially (same results either way).
  unsigned threads = 1;
  /// Zone-map / bloom skip-scans. Pruning never changes results (the
  /// differential suite asserts byte-identity on vs. off); turning it
  /// off exists for that differential and for perf comparison.
  bool prune = true;
  /// When set, filled with what the scan touched and pruned.
  ScanStats* stats = nullptr;
  /// When non-null the scan publishes
  ///   flowdb.scans         counter  scan() calls
  ///   flowdb.rows_scanned  counter  rows visited
  ///   flowdb.rows_matched  counter  rows matched
  /// plus the flowdb.scan.* pruning counters (see ScanStats).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Planner predicates: can any row allowed by this zone block satisfy
/// the filter? Conservative — false only when a match is impossible.
[[nodiscard]] bool zone_may_match(const ZoneMap& zone, const Filter& filter);
[[nodiscard]] bool chunk_may_match(const ChunkZone& zone,
                                   const Filter& filter);

/// Scan the store, returning matching row ids in ascending order.
std::vector<std::uint64_t> scan(const Reader& reader, const Filter& filter,
                                const ScanOptions& options = {});

enum class GroupBy { kVerdict, kTenant, kPolicy, kTap };

/// One aggregation bucket. Labels: verdict groups use shim verdict
/// names ("none" for unannotated flows); string groups use the
/// dictionary value ("-" for the empty string).
struct Agg {
  std::string label;
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const Agg&, const Agg&) = default;
};

/// Aggregate `rows` (ids from scan()) grouped by `group`, label-sorted.
std::vector<Agg> aggregate(const Reader& reader,
                           std::span<const std::uint64_t> rows,
                           GroupBy group);

/// Aggregate every row of the store.
std::vector<Agg> aggregate_all(const Reader& reader, GroupBy group);

/// Verdict-distribution comparison between two stores — the cross-run
/// regression gate behind `gq_trace diff`. Shares are fractions of each
/// store's total row count; delta is |share_a - share_b|.
struct VerdictDiff {
  struct Entry {
    std::string label;
    std::uint64_t count_a = 0;
    std::uint64_t count_b = 0;
    double share_a = 0.0;
    double share_b = 0.0;
    double delta = 0.0;
  };
  std::vector<Entry> entries;  ///< Label-sorted union of both stores.
  std::uint64_t rows_a = 0;
  std::uint64_t rows_b = 0;
  double max_delta = 0.0;

  /// True when every verdict share moved by at most `tolerance`.
  [[nodiscard]] bool within(double tolerance) const {
    return max_delta <= tolerance;
  }
};

VerdictDiff diff_verdicts(const Reader& a, const Reader& b);

}  // namespace gq::flowdb
