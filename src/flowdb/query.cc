#include "flowdb/query.h"

#include <algorithm>
#include <map>
#include <thread>

#include "shim/shim.h"

namespace gq::flowdb {

namespace {

/// A Filter with its string predicates resolved against one store's
/// dictionary. `impossible` short-circuits the scan when a requested
/// name does not exist in the store at all.
struct CompiledFilter {
  const Filter* filter = nullptr;
  bool impossible = false;
  std::optional<std::uint32_t> tenant_id;
  std::optional<std::uint32_t> policy_id;
  std::optional<std::uint32_t> tap_id;
};

CompiledFilter compile(const Reader& reader, const Filter& filter) {
  CompiledFilter cf;
  cf.filter = &filter;
  const auto resolve = [&](const std::optional<std::string>& name,
                           std::optional<std::uint32_t>& id) {
    if (!name) return;
    id = reader.dict_id(*name);
    if (!id) cf.impossible = true;
  };
  resolve(filter.tenant, cf.tenant_id);
  resolve(filter.policy, cf.policy_id);
  resolve(filter.tap, cf.tap_id);
  return cf;
}

/// Evaluate the conjunction for one row. Columns are captured once per
/// scan; this runs over typed spans straight from the mapping.
struct RowPredicate {
  const Reader& reader;
  const CompiledFilter& cf;
  std::span<const std::uint8_t> proto = reader.proto();
  std::span<const std::uint32_t> src_addr = reader.src_addr();
  std::span<const std::uint16_t> src_port = reader.src_port();
  std::span<const std::uint32_t> dst_addr = reader.dst_addr();
  std::span<const std::uint16_t> dst_port = reader.dst_port();
  std::span<const std::uint16_t> vlan = reader.vlan();
  std::span<const std::uint32_t> tenant = reader.tenant();
  std::span<const std::uint64_t> job = reader.job();
  std::span<const std::uint8_t> verdict = reader.verdict();
  std::span<const std::uint8_t> source = reader.verdict_source();
  std::span<const std::uint32_t> policy = reader.policy();
  std::span<const std::uint32_t> tap = reader.tap();
  std::span<const std::int64_t> first = reader.first_usec();
  std::span<const std::int64_t> last = reader.last_usec();

  [[nodiscard]] bool operator()(std::uint64_t i) const {
    const Filter& f = *cf.filter;
    if (f.verdict && verdict[i] != *f.verdict) return false;
    if (f.source && (verdict[i] == 0 || source[i] != *f.source))
      return false;
    if (cf.tenant_id && tenant[i] != *cf.tenant_id) return false;
    if (cf.policy_id && policy[i] != *cf.policy_id) return false;
    if (cf.tap_id && tap[i] != *cf.tap_id) return false;
    if (f.job && job[i] != *f.job) return false;
    if (f.vlan && vlan[i] != *f.vlan) return false;
    if (f.proto && proto[i] != static_cast<std::uint8_t>(*f.proto))
      return false;
    if (f.endpoint) {
      const std::uint32_t want = f.endpoint->value();
      if (src_addr[i] != want && dst_addr[i] != want) return false;
    }
    if (f.prefix && !f.prefix->contains(util::Ipv4Addr(src_addr[i])) &&
        !f.prefix->contains(util::Ipv4Addr(dst_addr[i])))
      return false;
    if (f.port && src_port[i] != *f.port && dst_port[i] != *f.port)
      return false;
    if (f.since_usec && last[i] < *f.since_usec) return false;
    if (f.until_usec && first[i] > *f.until_usec) return false;
    return true;
  }
};

}  // namespace

std::vector<std::uint64_t> scan(const Reader& reader, const Filter& filter,
                                const ScanOptions& options) {
  const std::uint64_t n = reader.rows();
  std::vector<std::uint64_t> matches;
  const CompiledFilter cf = compile(reader, filter);
  if (!cf.impossible && n > 0) {
    const RowPredicate pred{reader, cf};
    const std::uint64_t chunks = (n + kScanChunk - 1) / kScanChunk;
    const unsigned threads =
        static_cast<unsigned>(std::min<std::uint64_t>(
            std::max(1u, options.threads), chunks));
    if (threads <= 1) {
      for (std::uint64_t i = 0; i < n; ++i)
        if (pred(i)) matches.push_back(i);
    } else {
      // Chunk c belongs to worker (c % threads); per-chunk match lists
      // are concatenated in chunk order afterwards, so the output is
      // identical to the serial scan regardless of thread count.
      std::vector<std::vector<std::uint64_t>> per_chunk(chunks);
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          for (std::uint64_t c = t; c < chunks; c += threads) {
            const std::uint64_t begin = c * kScanChunk;
            const std::uint64_t end = std::min(n, begin + kScanChunk);
            auto& out = per_chunk[c];
            for (std::uint64_t i = begin; i < end; ++i)
              if (pred(i)) out.push_back(i);
          }
        });
      }
      for (auto& worker : workers) worker.join();
      for (const auto& chunk : per_chunk)
        matches.insert(matches.end(), chunk.begin(), chunk.end());
    }
  }
  if (options.metrics) {
    options.metrics->counter("flowdb.scans").inc();
    options.metrics->counter("flowdb.rows_scanned").inc(n);
    options.metrics->counter("flowdb.rows_matched").inc(matches.size());
  }
  return matches;
}

std::vector<Agg> aggregate(const Reader& reader,
                           std::span<const std::uint64_t> rows,
                           GroupBy group) {
  const auto verdicts = reader.verdict();
  const auto tenants = reader.tenant();
  const auto policies = reader.policy();
  const auto taps = reader.tap();
  const auto packets = reader.packets();
  const auto bytes = reader.bytes();
  const auto label_of = [&](std::uint64_t i) -> std::string {
    switch (group) {
      case GroupBy::kVerdict:
        return verdicts[i] == 0
                   ? "none"
                   : shim::verdict_name(
                         static_cast<shim::Verdict>(verdicts[i]));
      case GroupBy::kTenant: {
        const auto name = reader.dict(tenants[i]);
        return name.empty() ? "-" : std::string(name);
      }
      case GroupBy::kPolicy: {
        const auto name = reader.dict(policies[i]);
        return name.empty() ? "-" : std::string(name);
      }
      case GroupBy::kTap: {
        const auto name = reader.dict(taps[i]);
        return name.empty() ? "-" : std::string(name);
      }
    }
    return "?";
  };
  std::map<std::string, Agg> buckets;  // map: label-sorted for free.
  for (const std::uint64_t i : rows) {
    if (i >= reader.rows()) continue;
    Agg& bucket = buckets[label_of(i)];
    bucket.flows += 1;
    bucket.packets += packets[i];
    bucket.bytes += bytes[i];
  }
  std::vector<Agg> out;
  out.reserve(buckets.size());
  for (auto& [label, bucket] : buckets) {
    bucket.label = label;
    out.push_back(std::move(bucket));
  }
  return out;
}

std::vector<Agg> aggregate_all(const Reader& reader, GroupBy group) {
  std::vector<std::uint64_t> all(reader.rows());
  for (std::uint64_t i = 0; i < all.size(); ++i) all[i] = i;
  return aggregate(reader, all, group);
}

VerdictDiff diff_verdicts(const Reader& a, const Reader& b) {
  const auto counts_of = [](const Reader& reader) {
    std::map<std::string, std::uint64_t> counts;
    for (const auto& agg : aggregate_all(reader, GroupBy::kVerdict))
      counts[agg.label] = agg.flows;
    return counts;
  };
  const auto counts_a = counts_of(a);
  const auto counts_b = counts_of(b);
  VerdictDiff diff;
  diff.rows_a = a.rows();
  diff.rows_b = b.rows();
  std::map<std::string, VerdictDiff::Entry> merged;
  for (const auto& [label, count] : counts_a) {
    merged[label].label = label;
    merged[label].count_a = count;
  }
  for (const auto& [label, count] : counts_b) {
    merged[label].label = label;
    merged[label].count_b = count;
  }
  for (auto& [label, entry] : merged) {
    entry.share_a =
        diff.rows_a ? static_cast<double>(entry.count_a) / diff.rows_a : 0.0;
    entry.share_b =
        diff.rows_b ? static_cast<double>(entry.count_b) / diff.rows_b : 0.0;
    entry.delta = std::abs(entry.share_a - entry.share_b);
    diff.max_delta = std::max(diff.max_delta, entry.delta);
    diff.entries.push_back(entry);
  }
  // Two stores where one is empty and the other is not never pass.
  if ((diff.rows_a == 0) != (diff.rows_b == 0)) diff.max_delta = 1.0;
  return diff;
}

}  // namespace gq::flowdb
