#include "flowdb/query.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "flowdb/scan_impl.h"
#include "shim/shim.h"

namespace gq::flowdb {

using detail::CompiledFilter;
using detail::RowPredicate;
using detail::ScanTask;

void ScanStats::add_to(obs::MetricsRegistry& metrics) const {
  metrics.counter("flowdb.scan.segments_considered").inc(segments_considered);
  metrics.counter("flowdb.scan.segments_pruned").inc(segments_pruned);
  metrics.counter("flowdb.scan.segments_scanned").inc(segments_scanned);
  metrics.counter("flowdb.scan.chunks_pruned").inc(chunks_pruned);
  metrics.counter("flowdb.scan.chunks_scanned").inc(chunks_scanned);
  metrics.counter("flowdb.scan.rows_scanned").inc(rows_scanned);
  metrics.counter("flowdb.scan.rows_matched").inc(rows_matched);
}

bool zone_may_match(const ZoneMap& zone, const Filter& filter) {
  // An empty segment matches nothing; the min/max fields hold empty-
  // range sentinels in that case and must not be consulted.
  if (zone.row_count == 0) return false;
  // Row time predicate: last >= since && first <= until. Prunable when
  // no row can pass — max(last) < since, or min(first) > until.
  if (filter.since_usec && zone.max_last_usec < *filter.since_usec)
    return false;
  if (filter.until_usec && zone.min_first_usec > *filter.until_usec)
    return false;
  if (filter.vlan &&
      (*filter.vlan < zone.min_vlan || *filter.vlan > zone.max_vlan))
    return false;
  // Port range spans both sides, matching the either-side predicate.
  if (filter.port &&
      (*filter.port < zone.min_port || *filter.port > zone.max_port))
    return false;
  if (filter.tenant &&
      !bloom_may_contain(zone.bloom, bloom_key_tenant(*filter.tenant)))
    return false;
  if (filter.endpoint &&
      !bloom_may_contain(zone.bloom,
                         bloom_key_endpoint(filter.endpoint->value())))
    return false;
  return true;
}

bool chunk_may_match(const ChunkZone& zone, const Filter& filter) {
  if (filter.since_usec && zone.max_last_usec < *filter.since_usec)
    return false;
  if (filter.until_usec && zone.min_first_usec > *filter.until_usec)
    return false;
  return true;
}

namespace detail {

std::vector<std::vector<std::uint64_t>> run_tasks(
    std::span<const RowPredicate> preds, std::span<const ScanTask> tasks,
    unsigned thread_opt) {
  // Task t belongs to worker (t % threads); per-task match lists are
  // concatenated in task (== segment, chunk) order afterwards, so the
  // output is identical to the serial scan regardless of thread count.
  std::vector<std::vector<std::uint64_t>> per_task(tasks.size());
  const auto run_one = [&](std::size_t t) {
    const ScanTask& task = tasks[t];
    const RowPredicate& pred = preds[task.pred];
    auto& out = per_task[t];
    for (std::uint64_t i = task.begin; i < task.end; ++i)
      if (pred(i)) out.push_back(task.base + i);
  };
  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, thread_opt), tasks.size()));
  if (threads <= 1) {
    for (std::size_t t = 0; t < tasks.size(); ++t) run_one(t);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        for (std::size_t t = w; t < tasks.size(); t += threads) run_one(t);
      });
    }
    for (auto& worker : workers) worker.join();
  }
  return per_task;
}

}  // namespace detail

std::vector<std::uint64_t> scan(const Reader& reader, const Filter& filter,
                                const ScanOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t n = reader.rows();
  ScanStats local;
  ScanStats& stats = options.stats ? *options.stats : local;
  stats = {};
  stats.segments_considered = 1;

  std::vector<std::uint64_t> matches;
  const CompiledFilter cf = detail::compile(reader, filter);
  if (options.prune && !zone_may_match(reader.zone(), filter)) {
    stats.segments_pruned = 1;
  } else if (!cf.impossible && n > 0) {
    stats.segments_scanned = 1;
    const RowPredicate pred(reader, cf);
    const auto chunk_zones = reader.chunk_zones();
    std::vector<ScanTask> tasks;
    tasks.reserve(chunk_zones.size());
    for (std::uint64_t c = 0; c < chunk_zones.size(); ++c) {
      if (options.prune && !chunk_may_match(chunk_zones[c], filter)) {
        ++stats.chunks_pruned;
        continue;
      }
      const std::uint64_t begin = c * kScanChunk;
      const std::uint64_t end = std::min(n, begin + kScanChunk);
      tasks.push_back({0, 0, begin, end});
      ++stats.chunks_scanned;
      stats.rows_scanned += end - begin;
    }
    const auto per_task =
        detail::run_tasks({&pred, 1}, tasks, options.threads);
    for (const auto& chunk : per_task)
      matches.insert(matches.end(), chunk.begin(), chunk.end());
  }
  stats.rows_matched = matches.size();
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (options.metrics) {
    options.metrics->counter("flowdb.scans").inc();
    options.metrics->counter("flowdb.rows_scanned").inc(stats.rows_scanned);
    options.metrics->counter("flowdb.rows_matched").inc(matches.size());
    stats.add_to(*options.metrics);
  }
  return matches;
}

std::vector<Agg> aggregate(const Reader& reader,
                           std::span<const std::uint64_t> rows,
                           GroupBy group) {
  const auto verdicts = reader.verdict();
  const auto tenants = reader.tenant();
  const auto policies = reader.policy();
  const auto taps = reader.tap();
  const auto packets = reader.packets();
  const auto bytes = reader.bytes();
  const auto label_of = [&](std::uint64_t i) -> std::string {
    switch (group) {
      case GroupBy::kVerdict:
        return verdicts[i] == 0
                   ? "none"
                   : shim::verdict_name(
                         static_cast<shim::Verdict>(verdicts[i]));
      case GroupBy::kTenant: {
        const auto name = reader.dict(tenants[i]);
        return name.empty() ? "-" : std::string(name);
      }
      case GroupBy::kPolicy: {
        const auto name = reader.dict(policies[i]);
        return name.empty() ? "-" : std::string(name);
      }
      case GroupBy::kTap: {
        const auto name = reader.dict(taps[i]);
        return name.empty() ? "-" : std::string(name);
      }
    }
    return "?";
  };
  std::map<std::string, Agg> buckets;  // map: label-sorted for free.
  for (const std::uint64_t i : rows) {
    if (i >= reader.rows()) continue;
    Agg& bucket = buckets[label_of(i)];
    bucket.flows += 1;
    bucket.packets += packets[i];
    bucket.bytes += bytes[i];
  }
  std::vector<Agg> out;
  out.reserve(buckets.size());
  for (auto& [label, bucket] : buckets) {
    bucket.label = label;
    out.push_back(std::move(bucket));
  }
  return out;
}

std::vector<Agg> aggregate_all(const Reader& reader, GroupBy group) {
  std::vector<std::uint64_t> all(reader.rows());
  for (std::uint64_t i = 0; i < all.size(); ++i) all[i] = i;
  return aggregate(reader, all, group);
}

VerdictDiff diff_verdicts(const Reader& a, const Reader& b) {
  const auto counts_of = [](const Reader& reader) {
    std::map<std::string, std::uint64_t> counts;
    for (const auto& agg : aggregate_all(reader, GroupBy::kVerdict))
      counts[agg.label] = agg.flows;
    return counts;
  };
  const auto counts_a = counts_of(a);
  const auto counts_b = counts_of(b);
  VerdictDiff diff;
  diff.rows_a = a.rows();
  diff.rows_b = b.rows();
  std::map<std::string, VerdictDiff::Entry> merged;
  for (const auto& [label, count] : counts_a) {
    merged[label].label = label;
    merged[label].count_a = count;
  }
  for (const auto& [label, count] : counts_b) {
    merged[label].label = label;
    merged[label].count_b = count;
  }
  for (auto& [label, entry] : merged) {
    entry.share_a =
        diff.rows_a ? static_cast<double>(entry.count_a) / diff.rows_a : 0.0;
    entry.share_b =
        diff.rows_b ? static_cast<double>(entry.count_b) / diff.rows_b : 0.0;
    entry.delta = std::abs(entry.share_a - entry.share_b);
    diff.max_delta = std::max(diff.max_delta, entry.delta);
    diff.entries.push_back(entry);
  }
  // Two stores where one is empty and the other is not never pass.
  if ((diff.rows_a == 0) != (diff.rows_b == 0)) diff.max_delta = 1.0;
  return diff;
}

}  // namespace gq::flowdb
