// Segmented FlowDB store (DESIGN.md §14): a directory holding an
// ordered set of sealed `.fdb` segments plus a `store.manifest` text
// index. Live farms append new sealed segments without rewriting prior
// ones; a deterministic size-tiered compactor keeps the segment count
// bounded; and the query planner prunes whole segments against their
// zone-map/bloom tails — read with a ~1 KiB pread, no mmap — before
// touching any column data.
//
// Manifest format (text, one record per line):
//
//   gq-flowdb-store 2
//   segment <file> <rows> <bytes> <footer-hash-hex16> <zone-hash-hex16>
//
// Manifest line order IS store order: global row id = sum of prior
// segment row counts + local row. Two hashes recorded at append time
// pin each segment: the sealed footer hash pins the file's exact
// bytes, and the zone hash (FNV-1a over the zone block region) pins
// the skip-scan metadata itself. The planner's cheap tail read
// verifies both, so any post-seal rewrite of the zone block — whether
// footer-resealed or edited in place under the original footer —
// fails the pin before the pruning decision can go wrong; a segment
// that is opened is additionally recompute-verified by the Reader
// (flowdb.h).
//
// The manifest is rewritten via temp-file + fsync + rename (plus a
// directory fsync), so a crash mid-update can never strand the store
// behind a truncated manifest.
//
// Determinism contract: append order is caller order; compaction only
// ever merges ADJACENT segments (preserving global row order) and
// picks the pair with the smallest combined row count (ties: earliest
// position), so the same segment sequence always compacts to byte-
// identical segments and manifests — the s3 bench folds this into its
// threaded-vs-serial store-hash gate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "flowdb/flowdb.h"
#include "flowdb/query.h"
#include "obs/metrics.h"

namespace gq::flowdb {

inline constexpr const char kManifestName[] = "store.manifest";
/// Default compaction fan-in bound: compact_segments() merges until at
/// most this many segments remain.
inline constexpr std::size_t kDefaultMaxSegments = 8;

struct SegmentInfo {
  std::string file;               ///< Relative name inside the store dir.
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;        ///< Exact file size.
  std::uint64_t footer_hash = 0;  ///< The segment's sealed FNV-1a footer.
  std::uint64_t zone_hash = 0;    ///< FNV-1a over the zone block region.

  friend bool operator==(const SegmentInfo&, const SegmentInfo&) = default;
};

struct StoreManifest {
  std::vector<SegmentInfo> segments;

  /// Canonical text form (serialize(parse(x)) == x for valid x).
  [[nodiscard]] std::string serialize() const;
  /// Hardened parse: bad header line, malformed records, hostile file
  /// names, counts out of range, or duplicate names all reject.
  static std::optional<StoreManifest> parse(std::string_view text);

  [[nodiscard]] std::uint64_t total_rows() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
};

/// Writer side of a segmented store: open (or initialise) a directory,
/// append sealed segments, compact. When `metrics` is non-null:
///   flowdb.segments_written    counter  append_segment() successes
///   flowdb.segments_compacted  counter  segments merged away
class SegmentedStore {
 public:
  /// Open an existing store or initialise an empty one. A fresh
  /// manifest is written only when none exists (ENOENT); any other
  /// manifest read failure (EACCES, EIO, ...) fails the open rather
  /// than clobbering a store we merely could not read.
  static std::optional<SegmentedStore> open(
      const std::string& dir, obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const StoreManifest& manifest() const { return manifest_; }

  /// Seal `writer` as the next `segment-<seq>.fdb`. Zero rows is a
  /// no-op success (live farms may have nothing new to flush).
  bool append_segment(const Writer& writer);

  /// Deterministic size-tiered compaction: while more than
  /// `max_segments` remain, merge the adjacent pair with the smallest
  /// combined row count (ties: earliest). Byte-deterministic — the
  /// merged segment is a pure function of the input row sequence.
  bool compact_segments(std::size_t max_segments = kDefaultMaxSegments);

 private:
  SegmentedStore() = default;
  bool write_manifest() const;

  std::string dir_;
  StoreManifest manifest_;
  std::uint64_t next_seq_ = 1;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Query side: plans Filters against per-segment zone maps (read from
/// segment tails at open, without mapping column data), mmaps only
/// surviving segments, and extends the chunk-parallel scan across them
/// while preserving ascending global row order — bit-identical to the
/// serial, pruning-off scan at any thread count.
///
/// Methods return nullopt on store corruption (a segment that fails
/// validation, including detected zone lies); pruning never silently
/// drops rows.
class SegmentedReader {
 public:
  static std::optional<SegmentedReader> open(const std::string& dir);

  [[nodiscard]] const StoreManifest& manifest() const { return manifest_; }
  [[nodiscard]] std::uint64_t rows() const;
  [[nodiscard]] std::size_t segment_count() const {
    return manifest_.segments.size();
  }
  [[nodiscard]] const ZoneMap& segment_zone(std::size_t i) const {
    return zones_[i];
  }
  /// Global row id of segment i's first row.
  [[nodiscard]] std::uint64_t segment_base(std::size_t i) const {
    return bases_[i];
  }

  /// Matching global row ids, ascending. Lazy-opens only the segments
  /// the planner could not prune.
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> scan(
      const Filter& filter, const ScanOptions& options = {});

  /// Aggregate global row ids (merged across segments, label-sorted).
  [[nodiscard]] std::optional<std::vector<Agg>> aggregate(
      std::span<const std::uint64_t> rows, GroupBy group);
  [[nodiscard]] std::optional<std::vector<Agg>> aggregate_all(GroupBy group);

  /// Reconstruct one row by global id (nullopt: out of range or a
  /// segment that fails validation).
  [[nodiscard]] std::optional<Row> row(std::uint64_t global);

 private:
  SegmentedReader() = default;
  const Reader* segment_reader(std::size_t i);

  std::string dir_;
  StoreManifest manifest_;
  std::vector<ZoneMap> zones_;
  std::vector<std::uint64_t> bases_;
  std::vector<std::optional<Reader>> readers_;  ///< Lazy mmaps.
};

}  // namespace gq::flowdb
