file(REMOVE_RECURSE
  "CMakeFiles/table1_worm_captures.dir/table1_worm_captures.cc.o"
  "CMakeFiles/table1_worm_captures.dir/table1_worm_captures.cc.o.d"
  "table1_worm_captures"
  "table1_worm_captures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_worm_captures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
