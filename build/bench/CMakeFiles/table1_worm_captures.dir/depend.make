# Empty dependencies file for table1_worm_captures.
# This may be replaced when dependencies are built.
