file(REMOVE_RECURSE
  "CMakeFiles/s1_scalability.dir/s1_scalability.cc.o"
  "CMakeFiles/s1_scalability.dir/s1_scalability.cc.o.d"
  "s1_scalability"
  "s1_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
