# Empty dependencies file for s1_scalability.
# This may be replaced when dependencies are built.
