# Empty dependencies file for fig3_subfarms.
# This may be replaced when dependencies are built.
