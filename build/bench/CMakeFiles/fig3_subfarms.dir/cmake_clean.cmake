file(REMOVE_RECURSE
  "CMakeFiles/fig3_subfarms.dir/fig3_subfarms.cc.o"
  "CMakeFiles/fig3_subfarms.dir/fig3_subfarms.cc.o.d"
  "fig3_subfarms"
  "fig3_subfarms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_subfarms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
