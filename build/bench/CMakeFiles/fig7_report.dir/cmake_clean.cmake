file(REMOVE_RECURSE
  "CMakeFiles/fig7_report.dir/fig7_report.cc.o"
  "CMakeFiles/fig7_report.dir/fig7_report.cc.o.d"
  "fig7_report"
  "fig7_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
