# Empty compiler generated dependencies file for fig7_report.
# This may be replaced when dependencies are built.
