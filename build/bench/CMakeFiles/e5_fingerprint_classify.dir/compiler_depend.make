# Empty compiler generated dependencies file for e5_fingerprint_classify.
# This may be replaced when dependencies are built.
