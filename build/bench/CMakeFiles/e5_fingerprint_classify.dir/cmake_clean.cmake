file(REMOVE_RECURSE
  "CMakeFiles/e5_fingerprint_classify.dir/e5_fingerprint_classify.cc.o"
  "CMakeFiles/e5_fingerprint_classify.dir/e5_fingerprint_classify.cc.o.d"
  "e5_fingerprint_classify"
  "e5_fingerprint_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_fingerprint_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
