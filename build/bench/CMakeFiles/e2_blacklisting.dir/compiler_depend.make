# Empty compiler generated dependencies file for e2_blacklisting.
# This may be replaced when dependencies are built.
