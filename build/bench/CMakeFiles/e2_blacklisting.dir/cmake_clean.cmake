file(REMOVE_RECURSE
  "CMakeFiles/e2_blacklisting.dir/e2_blacklisting.cc.o"
  "CMakeFiles/e2_blacklisting.dir/e2_blacklisting.cc.o.d"
  "e2_blacklisting"
  "e2_blacklisting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_blacklisting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
