# Empty dependencies file for fig4_shim_protocol.
# This may be replaced when dependencies are built.
