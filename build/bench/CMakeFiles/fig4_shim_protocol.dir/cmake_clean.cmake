file(REMOVE_RECURSE
  "CMakeFiles/fig4_shim_protocol.dir/fig4_shim_protocol.cc.o"
  "CMakeFiles/fig4_shim_protocol.dir/fig4_shim_protocol.cc.o.d"
  "fig4_shim_protocol"
  "fig4_shim_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_shim_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
