# Empty compiler generated dependencies file for a1_policy_prober.
# This may be replaced when dependencies are built.
