file(REMOVE_RECURSE
  "CMakeFiles/a1_policy_prober.dir/a1_policy_prober.cc.o"
  "CMakeFiles/a1_policy_prober.dir/a1_policy_prober.cc.o.d"
  "a1_policy_prober"
  "a1_policy_prober.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_policy_prober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
