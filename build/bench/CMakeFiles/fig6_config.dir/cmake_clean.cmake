file(REMOVE_RECURSE
  "CMakeFiles/fig6_config.dir/fig6_config.cc.o"
  "CMakeFiles/fig6_config.dir/fig6_config.cc.o.d"
  "fig6_config"
  "fig6_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
