# Empty dependencies file for fig6_config.
# This may be replaced when dependencies are built.
