# Empty dependencies file for e1_storm_ftp.
# This may be replaced when dependencies are built.
