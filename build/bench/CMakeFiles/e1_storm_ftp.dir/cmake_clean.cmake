file(REMOVE_RECURSE
  "CMakeFiles/e1_storm_ftp.dir/e1_storm_ftp.cc.o"
  "CMakeFiles/e1_storm_ftp.dir/e1_storm_ftp.cc.o.d"
  "e1_storm_ftp"
  "e1_storm_ftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_storm_ftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
