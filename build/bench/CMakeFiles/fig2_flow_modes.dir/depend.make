# Empty dependencies file for fig2_flow_modes.
# This may be replaced when dependencies are built.
