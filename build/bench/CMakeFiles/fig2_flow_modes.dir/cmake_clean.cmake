file(REMOVE_RECURSE
  "CMakeFiles/fig2_flow_modes.dir/fig2_flow_modes.cc.o"
  "CMakeFiles/fig2_flow_modes.dir/fig2_flow_modes.cc.o.d"
  "fig2_flow_modes"
  "fig2_flow_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_flow_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
