file(REMOVE_RECURSE
  "CMakeFiles/fig5_rewrite_flow.dir/fig5_rewrite_flow.cc.o"
  "CMakeFiles/fig5_rewrite_flow.dir/fig5_rewrite_flow.cc.o.d"
  "fig5_rewrite_flow"
  "fig5_rewrite_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rewrite_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
