# Empty compiler generated dependencies file for fig5_rewrite_flow.
# This may be replaced when dependencies are built.
