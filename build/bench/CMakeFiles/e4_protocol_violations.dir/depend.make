# Empty dependencies file for e4_protocol_violations.
# This may be replaced when dependencies are built.
