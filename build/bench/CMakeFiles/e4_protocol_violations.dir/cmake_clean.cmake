file(REMOVE_RECURSE
  "CMakeFiles/e4_protocol_violations.dir/e4_protocol_violations.cc.o"
  "CMakeFiles/e4_protocol_violations.dir/e4_protocol_violations.cc.o.d"
  "e4_protocol_violations"
  "e4_protocol_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_protocol_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
