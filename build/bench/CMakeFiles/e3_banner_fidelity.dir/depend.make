# Empty dependencies file for e3_banner_fidelity.
# This may be replaced when dependencies are built.
