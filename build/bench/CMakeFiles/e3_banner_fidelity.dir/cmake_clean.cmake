file(REMOVE_RECURSE
  "CMakeFiles/e3_banner_fidelity.dir/e3_banner_fidelity.cc.o"
  "CMakeFiles/e3_banner_fidelity.dir/e3_banner_fidelity.cc.o.d"
  "e3_banner_fidelity"
  "e3_banner_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_banner_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
