file(REMOVE_RECURSE
  "CMakeFiles/example_worm_capture.dir/worm_capture.cpp.o"
  "CMakeFiles/example_worm_capture.dir/worm_capture.cpp.o.d"
  "example_worm_capture"
  "example_worm_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_worm_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
