# Empty compiler generated dependencies file for example_worm_capture.
# This may be replaced when dependencies are built.
