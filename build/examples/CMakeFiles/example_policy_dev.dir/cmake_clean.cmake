file(REMOVE_RECURSE
  "CMakeFiles/example_policy_dev.dir/policy_dev.cpp.o"
  "CMakeFiles/example_policy_dev.dir/policy_dev.cpp.o.d"
  "example_policy_dev"
  "example_policy_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
