# Empty compiler generated dependencies file for example_policy_dev.
# This may be replaced when dependencies are built.
