file(REMOVE_RECURSE
  "CMakeFiles/example_spam_farm.dir/spam_farm.cpp.o"
  "CMakeFiles/example_spam_farm.dir/spam_farm.cpp.o.d"
  "example_spam_farm"
  "example_spam_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spam_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
