# Empty compiler generated dependencies file for example_spam_farm.
# This may be replaced when dependencies are built.
