# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/containment_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/extnet_test[1]_include.cmake")
include("/root/repo/build/tests/farm_test[1]_include.cmake")
include("/root/repo/build/tests/gateway_test[1]_include.cmake")
include("/root/repo/build/tests/inmate_test[1]_include.cmake")
include("/root/repo/build/tests/malware_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/packet_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/shim_test[1]_include.cmake")
include("/root/repo/build/tests/sinks_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
