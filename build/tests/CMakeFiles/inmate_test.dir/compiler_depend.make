# Empty compiler generated dependencies file for inmate_test.
# This may be replaced when dependencies are built.
