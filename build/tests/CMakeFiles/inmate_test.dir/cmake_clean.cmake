file(REMOVE_RECURSE
  "CMakeFiles/inmate_test.dir/inmate_test.cc.o"
  "CMakeFiles/inmate_test.dir/inmate_test.cc.o.d"
  "inmate_test"
  "inmate_test.pdb"
  "inmate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inmate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
