# Empty compiler generated dependencies file for extnet_test.
# This may be replaced when dependencies are built.
