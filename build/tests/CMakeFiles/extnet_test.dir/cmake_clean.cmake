file(REMOVE_RECURSE
  "CMakeFiles/extnet_test.dir/extnet_test.cc.o"
  "CMakeFiles/extnet_test.dir/extnet_test.cc.o.d"
  "extnet_test"
  "extnet_test.pdb"
  "extnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
