file(REMOVE_RECURSE
  "libgq.a"
)
