
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/containment/config.cc" "src/CMakeFiles/gq.dir/containment/config.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/config.cc.o.d"
  "/root/repo/src/containment/handlers.cc" "src/CMakeFiles/gq.dir/containment/handlers.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/handlers.cc.o.d"
  "/root/repo/src/containment/policies.cc" "src/CMakeFiles/gq.dir/containment/policies.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/policies.cc.o.d"
  "/root/repo/src/containment/policy.cc" "src/CMakeFiles/gq.dir/containment/policy.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/policy.cc.o.d"
  "/root/repo/src/containment/prober.cc" "src/CMakeFiles/gq.dir/containment/prober.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/prober.cc.o.d"
  "/root/repo/src/containment/samples.cc" "src/CMakeFiles/gq.dir/containment/samples.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/samples.cc.o.d"
  "/root/repo/src/containment/server.cc" "src/CMakeFiles/gq.dir/containment/server.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/server.cc.o.d"
  "/root/repo/src/containment/trigger.cc" "src/CMakeFiles/gq.dir/containment/trigger.cc.o" "gcc" "src/CMakeFiles/gq.dir/containment/trigger.cc.o.d"
  "/root/repo/src/core/farm.cc" "src/CMakeFiles/gq.dir/core/farm.cc.o" "gcc" "src/CMakeFiles/gq.dir/core/farm.cc.o.d"
  "/root/repo/src/extnet/extnet.cc" "src/CMakeFiles/gq.dir/extnet/extnet.cc.o" "gcc" "src/CMakeFiles/gq.dir/extnet/extnet.cc.o.d"
  "/root/repo/src/gateway/arp_proxy.cc" "src/CMakeFiles/gq.dir/gateway/arp_proxy.cc.o" "gcc" "src/CMakeFiles/gq.dir/gateway/arp_proxy.cc.o.d"
  "/root/repo/src/gateway/gateway.cc" "src/CMakeFiles/gq.dir/gateway/gateway.cc.o" "gcc" "src/CMakeFiles/gq.dir/gateway/gateway.cc.o.d"
  "/root/repo/src/gateway/inmate_table.cc" "src/CMakeFiles/gq.dir/gateway/inmate_table.cc.o" "gcc" "src/CMakeFiles/gq.dir/gateway/inmate_table.cc.o.d"
  "/root/repo/src/gateway/router.cc" "src/CMakeFiles/gq.dir/gateway/router.cc.o" "gcc" "src/CMakeFiles/gq.dir/gateway/router.cc.o.d"
  "/root/repo/src/gateway/safety.cc" "src/CMakeFiles/gq.dir/gateway/safety.cc.o" "gcc" "src/CMakeFiles/gq.dir/gateway/safety.cc.o.d"
  "/root/repo/src/inmate/controller.cc" "src/CMakeFiles/gq.dir/inmate/controller.cc.o" "gcc" "src/CMakeFiles/gq.dir/inmate/controller.cc.o.d"
  "/root/repo/src/inmate/inmate.cc" "src/CMakeFiles/gq.dir/inmate/inmate.cc.o" "gcc" "src/CMakeFiles/gq.dir/inmate/inmate.cc.o.d"
  "/root/repo/src/inmate/vlan_pool.cc" "src/CMakeFiles/gq.dir/inmate/vlan_pool.cc.o" "gcc" "src/CMakeFiles/gq.dir/inmate/vlan_pool.cc.o.d"
  "/root/repo/src/malware/clickbot.cc" "src/CMakeFiles/gq.dir/malware/clickbot.cc.o" "gcc" "src/CMakeFiles/gq.dir/malware/clickbot.cc.o.d"
  "/root/repo/src/malware/dgabot.cc" "src/CMakeFiles/gq.dir/malware/dgabot.cc.o" "gcc" "src/CMakeFiles/gq.dir/malware/dgabot.cc.o.d"
  "/root/repo/src/malware/factory.cc" "src/CMakeFiles/gq.dir/malware/factory.cc.o" "gcc" "src/CMakeFiles/gq.dir/malware/factory.cc.o.d"
  "/root/repo/src/malware/fingerprint.cc" "src/CMakeFiles/gq.dir/malware/fingerprint.cc.o" "gcc" "src/CMakeFiles/gq.dir/malware/fingerprint.cc.o.d"
  "/root/repo/src/malware/spambot.cc" "src/CMakeFiles/gq.dir/malware/spambot.cc.o" "gcc" "src/CMakeFiles/gq.dir/malware/spambot.cc.o.d"
  "/root/repo/src/malware/stormbot.cc" "src/CMakeFiles/gq.dir/malware/stormbot.cc.o" "gcc" "src/CMakeFiles/gq.dir/malware/stormbot.cc.o.d"
  "/root/repo/src/malware/worm.cc" "src/CMakeFiles/gq.dir/malware/worm.cc.o" "gcc" "src/CMakeFiles/gq.dir/malware/worm.cc.o.d"
  "/root/repo/src/net/stack.cc" "src/CMakeFiles/gq.dir/net/stack.cc.o" "gcc" "src/CMakeFiles/gq.dir/net/stack.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/CMakeFiles/gq.dir/net/tcp.cc.o" "gcc" "src/CMakeFiles/gq.dir/net/tcp.cc.o.d"
  "/root/repo/src/netsim/event_loop.cc" "src/CMakeFiles/gq.dir/netsim/event_loop.cc.o" "gcc" "src/CMakeFiles/gq.dir/netsim/event_loop.cc.o.d"
  "/root/repo/src/netsim/port.cc" "src/CMakeFiles/gq.dir/netsim/port.cc.o" "gcc" "src/CMakeFiles/gq.dir/netsim/port.cc.o.d"
  "/root/repo/src/netsim/vlan_switch.cc" "src/CMakeFiles/gq.dir/netsim/vlan_switch.cc.o" "gcc" "src/CMakeFiles/gq.dir/netsim/vlan_switch.cc.o.d"
  "/root/repo/src/packet/checksum.cc" "src/CMakeFiles/gq.dir/packet/checksum.cc.o" "gcc" "src/CMakeFiles/gq.dir/packet/checksum.cc.o.d"
  "/root/repo/src/packet/frame.cc" "src/CMakeFiles/gq.dir/packet/frame.cc.o" "gcc" "src/CMakeFiles/gq.dir/packet/frame.cc.o.d"
  "/root/repo/src/packet/headers.cc" "src/CMakeFiles/gq.dir/packet/headers.cc.o" "gcc" "src/CMakeFiles/gq.dir/packet/headers.cc.o.d"
  "/root/repo/src/packet/pcap.cc" "src/CMakeFiles/gq.dir/packet/pcap.cc.o" "gcc" "src/CMakeFiles/gq.dir/packet/pcap.cc.o.d"
  "/root/repo/src/report/reporter.cc" "src/CMakeFiles/gq.dir/report/reporter.cc.o" "gcc" "src/CMakeFiles/gq.dir/report/reporter.cc.o.d"
  "/root/repo/src/services/dhcp.cc" "src/CMakeFiles/gq.dir/services/dhcp.cc.o" "gcc" "src/CMakeFiles/gq.dir/services/dhcp.cc.o.d"
  "/root/repo/src/services/dns.cc" "src/CMakeFiles/gq.dir/services/dns.cc.o" "gcc" "src/CMakeFiles/gq.dir/services/dns.cc.o.d"
  "/root/repo/src/services/ftp.cc" "src/CMakeFiles/gq.dir/services/ftp.cc.o" "gcc" "src/CMakeFiles/gq.dir/services/ftp.cc.o.d"
  "/root/repo/src/services/http.cc" "src/CMakeFiles/gq.dir/services/http.cc.o" "gcc" "src/CMakeFiles/gq.dir/services/http.cc.o.d"
  "/root/repo/src/shim/shim.cc" "src/CMakeFiles/gq.dir/shim/shim.cc.o" "gcc" "src/CMakeFiles/gq.dir/shim/shim.cc.o.d"
  "/root/repo/src/sinks/catchall.cc" "src/CMakeFiles/gq.dir/sinks/catchall.cc.o" "gcc" "src/CMakeFiles/gq.dir/sinks/catchall.cc.o.d"
  "/root/repo/src/sinks/smtp_sink.cc" "src/CMakeFiles/gq.dir/sinks/smtp_sink.cc.o" "gcc" "src/CMakeFiles/gq.dir/sinks/smtp_sink.cc.o.d"
  "/root/repo/src/util/addr.cc" "src/CMakeFiles/gq.dir/util/addr.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/addr.cc.o.d"
  "/root/repo/src/util/glob.cc" "src/CMakeFiles/gq.dir/util/glob.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/glob.cc.o.d"
  "/root/repo/src/util/ini.cc" "src/CMakeFiles/gq.dir/util/ini.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/ini.cc.o.d"
  "/root/repo/src/util/log.cc" "src/CMakeFiles/gq.dir/util/log.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/log.cc.o.d"
  "/root/repo/src/util/md5.cc" "src/CMakeFiles/gq.dir/util/md5.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/md5.cc.o.d"
  "/root/repo/src/util/rate.cc" "src/CMakeFiles/gq.dir/util/rate.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/rate.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/gq.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/rng.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/gq.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/strings.cc.o.d"
  "/root/repo/src/util/time.cc" "src/CMakeFiles/gq.dir/util/time.cc.o" "gcc" "src/CMakeFiles/gq.dir/util/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
