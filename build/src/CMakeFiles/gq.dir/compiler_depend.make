# Empty compiler generated dependencies file for gq.
# This may be replaced when dependencies are built.
