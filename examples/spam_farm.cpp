// The paper's Figure 6 / Figure 7 scenario: a "Botfarm" subfarm hosting
// Rustock inmates (VLANs 16-17) and Grum inmates (VLANs 18-19), infected
// iteratively from auto-infection batches, spamming into reflected SMTP
// sinks (with probabilistic connection drops, which is why the REFLECT
// flow counts exceed the SMTP session counts), C&C lifelines forwarded
// or filtered, and a 30-minute absence trigger reverting quiet bots.
//
//   $ ./example_spam_farm
#include <cstdio>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  core::Farm farm;

  // Simulated Internet: Rustock's HTTPS C&C, Grum's HTTP C&C, victims.
  auto& rustock_cc_host =
      farm.add_external_host("rustock-cc", Ipv4Addr(91, 207, 6, 10));
  ext::CcServer rustock_cc(rustock_cc_host, 443);
  auto& grum_cc_host =
      farm.add_external_host("grum-cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer grum_cc(grum_cc_host, 80);
  farm.add_external_host("victim-mx", Ipv4Addr(64, 12, 88, 7));

  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  task.subject = "pharmacy discount";
  task.body = "best prices";
  rustock_cc.set_document("/c2/tasks", task.serialize());
  grum_cc.set_document("/c2/tasks", task.serialize());

  auto& sub = farm.add_subfarm("Botfarm");
  sub.add_catchall_sink();

  sinks::SmtpSinkConfig simple_sink;
  simple_sink.port = 2525;
  simple_sink.drop_probability = 0.35;  // Figure 7's session/flow gap.
  auto& rustock_sink = sub.add_smtp_sink(simple_sink, "smtpsink");

  sinks::SmtpSinkConfig banner_sink;
  banner_sink.port = 2526;
  banner_sink.banner_grabbing = true;
  auto& grum_sink = sub.add_smtp_sink(banner_sink, "bannersmtpsink");

  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});

  // Sample batches (the MD5s land in the report, as in Figure 7).
  for (int i = 0; i < 4; ++i) {
    sub.containment().samples().add(
        util::format("rustock.100921.%03d.exe", i));
    sub.containment().samples().add(
        util::format("grum.100818.%03d.exe", i));
  }

  sub.catalog().register_prototype(
      "rustock.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "rustock";
        config.c2 = {Ipv4Addr(91, 207, 6, 10), 443};
        config.send_interval = util::seconds(2);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  sub.catalog().register_prototype(
      "grum.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "grum";
        config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
        config.send_interval = util::seconds(3);
        config.banner_requires = "ESMTP";  // Needs banner fidelity.
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });

  // The Figure 6 configuration file, verbatim in spirit.
  sub.configure_containment(R"(
[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
)");

  sub.create_inmate(inm::HostingKind::kVm, 16);
  sub.create_inmate(inm::HostingKind::kVm, 17);
  sub.create_inmate(inm::HostingKind::kVm, 18);
  sub.create_inmate(inm::HostingKind::kRawIron, 19);

  farm.run_for(util::hours(2));

  std::printf("%s\n", farm.report().c_str());
  std::printf(
      "Rustock sink: %llu sessions, %llu DATA transfers, %llu dropped\n",
      static_cast<unsigned long long>(rustock_sink.sessions()),
      static_cast<unsigned long long>(rustock_sink.data_transfers()),
      static_cast<unsigned long long>(rustock_sink.dropped_connections()));
  std::printf("Grum sink:    %llu sessions, %llu DATA transfers\n",
              static_cast<unsigned long long>(grum_sink.sessions()),
              static_cast<unsigned long long>(grum_sink.data_transfers()));
  return 0;
}
