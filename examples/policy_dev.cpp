// The paper's §3 containment-development methodology, step by step:
//
//   "Beginning from a complete default-deny of interaction with the
//    outside world, we execute the specimen in a subfarm providing a
//    sink server ... We can then whitelist traffic believed-safe for
//    outside interaction, in the most narrow fashion possible ...
//    iterating the process until we arrive at a containment policy that
//    allows just the C&C lifeline onto the Internet."
//
// This example runs the same fresh specimen under three successive
// policies — default-deny, sink-reflect-all, and a narrow whitelist —
// and prints what the analyst learns at each stage.
//
//   $ ./example_policy_dev
#include <cstdio>

#include "containment/policies.h"
#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

namespace {

// Iteration 3: the narrow whitelist — only the understood C&C request
// shape is forwarded; everything else still reflects to the sink.
class NarrowWhitelistPolicy : public gq::cs::SinkAllPolicy {
 public:
  explicit NarrowWhitelistPolicy(const gq::cs::PolicyEnv& env)
      : SinkAllPolicy(env, "NarrowWhitelist") {}

  gq::cs::Decision decide(const gq::cs::FlowInfo& info) override {
    // The analyst learned (from the sink captures) that the C&C lives at
    // 50.8.207.91:80 — allow exactly that, nothing else.
    if (info.dst() ==
        gq::util::Endpoint{gq::util::Ipv4Addr(50, 8, 207, 91), 80}) {
      return gq::cs::Decision::forward();
    }
    return to_sink("still contained");
  }
};

}  // namespace

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  core::Farm farm;
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  auto& sub = farm.add_subfarm("Development");
  auto& sink = sub.add_catchall_sink();

  // The "fresh specimen": we don't know yet that it's a spambot.
  auto spawn_specimen = [&](inm::Inmate& inmate) {
    mal::SpambotConfig config;
    config.family = "unknown-specimen";
    config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
    config.send_interval = util::seconds(3);
    inmate.infect_with(std::make_unique<mal::SpambotBehavior>(
                           config, farm.rng().fork()),
                       "specimen.exe");
  };

  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));  // Boot.

  // ---- Iteration 1: complete default-deny ------------------------------
  std::printf("=== Iteration 1: default-deny ===\n");
  sub.containment().bind_policy(
      16, 31, std::make_shared<cs::Policy>("DefaultDeny"));
  spawn_specimen(inmate);
  farm.run_for(util::minutes(10));
  auto totals = farm.reporter().verdict_totals();
  std::printf("Specimen attempted %llu flows; all dropped. We know it\n"
              "wants the network, but not what for.\n\n",
              static_cast<unsigned long long>(totals[shim::Verdict::kDrop]));

  // ---- Iteration 2: reflect everything to the sink ---------------------
  std::printf("=== Iteration 2: sink-reflect ===\n");
  sub.containment().bind_policy(
      16, 31, std::make_shared<cs::SinkAllPolicy>(sub.policy_env()));
  spawn_specimen(inmate);  // Fresh run of the specimen.
  farm.run_for(util::minutes(10));
  std::printf("Sink captured %llu flows. First bytes observed:\n",
              static_cast<unsigned long long>(sink.tcp_flows()));
  int shown = 0;
  for (const auto& record : sink.records()) {
    if (record.first_bytes.empty() || shown >= 3) continue;
    auto first_line = record.first_bytes.substr(
        0, record.first_bytes.find('\r'));
    std::printf("  %-20s -> \"%s\"\n", record.from.str().c_str(),
                first_line.c_str());
    ++shown;
  }
  std::printf("The GET /c2/tasks flow looks like a C&C poll; the port-25\n"
              "chatter is spam. Whitelist only the former.\n\n");

  // ---- Iteration 3: narrow whitelist ------------------------------------
  std::printf("=== Iteration 3: narrow C&C whitelist ===\n");
  sub.containment().bind_policy(
      16, 31, std::make_shared<NarrowWhitelistPolicy>(sub.policy_env()));
  spawn_specimen(inmate);
  farm.run_for(util::minutes(10));
  totals = farm.reporter().verdict_totals();
  std::printf(
      "C&C requests served by the real server: %llu\n"
      "Flows still contained in the sink:      %llu\n"
      "The specimen now operates (C&C lifeline alive) while every\n"
      "harmful flow stays inside GQ.\n",
      static_cast<unsigned long long>(cc.requests()),
      static_cast<unsigned long long>(totals[shim::Verdict::kReflect]));
  return 0;
}
