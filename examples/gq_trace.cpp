// gq_trace: operator CLI over saved trace archives (trace/tap.h).
//
//   gq_trace selftest [dir]          capture synthetic traffic, save,
//                                    reload, and exercise every command
//   gq_trace list <dir>              segment table of a saved archive
//   gq_trace summary <dir>           per-flow index summary
//   gq_trace extract <dir> <flow#> [out.pcap]
//                                    extract one flow's packets (O(flow),
//                                    via the index locations — no rescan)
//
// `selftest` doubles as the smoke entry point: with no arguments the
// tool runs it against a temporary directory and exits non-zero on any
// failure.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "packet/frame.h"
#include "packet/pcap.h"
#include "trace/tap.h"
#include "util/time.h"

namespace {

using namespace gq;

const char* proto_name(pkt::FlowProto proto) {
  return proto == pkt::FlowProto::kTcp ? "tcp" : "udp";
}

int cmd_list(const std::string& dir) {
  auto tap = trace::load_trace(dir);
  if (!tap) {
    std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                 dir.c_str());
    return 1;
  }
  const auto& archive = tap->archive();
  std::printf("archive '%s'  (segment budget %zu B x %zu)\n",
              tap->name().c_str(), archive.config().segment_bytes,
              archive.config().max_segments);
  std::printf(
      "lifetime %llu pkts; evicted %llu segments / %llu pkts / %llu B\n\n",
      static_cast<unsigned long long>(archive.total_packets()),
      static_cast<unsigned long long>(archive.evicted_segments()),
      static_cast<unsigned long long>(archive.evicted_packets()),
      static_cast<unsigned long long>(archive.evicted_bytes()));
  std::printf("%8s %10s %8s %14s %14s\n", "segment", "bytes", "packets",
              "first", "last");
  for (const auto& segment : archive.segments()) {
    std::printf("%8llu %10zu %8zu %14lld %14lld\n",
                static_cast<unsigned long long>(segment.seq),
                segment.pcap.size_bytes(), segment.packets,
                static_cast<long long>(segment.first_time.usec),
                static_cast<long long>(segment.last_time.usec));
  }
  return 0;
}

int cmd_summary(const std::string& dir) {
  auto tap = trace::load_trace(dir);
  if (!tap) {
    std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("archive '%s': %zu flows\n\n", tap->name().c_str(),
              tap->index().flow_count());
  std::size_t n = 0;
  for (const auto& flow : tap->index().flows()) {
    std::printf("#%-3zu %s %s -> %s vlan %u  %llu pkts / %llu B", n++,
                proto_name(flow.key.proto), flow.key.src.str().c_str(),
                flow.key.dst.str().c_str(), flow.vlan,
                static_cast<unsigned long long>(flow.packets),
                static_cast<unsigned long long>(flow.bytes));
    if (flow.has_verdict) {
      std::printf("  %s [%s]", shim::verdict_name(flow.verdict),
                  shim::verdict_source_name(flow.verdict_source));
      if (!flow.policy_name.empty())
        std::printf(" (policy %s)", flow.policy_name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_extract(const std::string& dir, std::size_t flow_no,
                const std::string& out_path) {
  auto tap = trace::load_trace(dir);
  if (!tap) {
    std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                 dir.c_str());
    return 1;
  }
  const auto& flows = tap->index().flows();
  if (flow_no >= flows.size()) {
    std::fprintf(stderr, "gq_trace: no flow #%zu (archive has %zu)\n",
                 flow_no, flows.size());
    return 1;
  }
  const auto& flow = flows[flow_no];
  const auto records = tap->extract_flow(flow);
  pkt::PcapWriter out;
  for (const auto& record : records) out.record(record.time, record.frame);
  if (!out_path.empty()) {
    if (!out.save(out_path)) {
      std::fprintf(stderr, "gq_trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %zu of %llu packets of flow #%zu to %s\n",
                records.size(),
                static_cast<unsigned long long>(flow.packets), flow_no,
                out_path.c_str());
  } else {
    for (const auto& record : records) {
      std::string line = "?";
      std::vector<std::uint8_t> bytes = record.frame;
      if (auto decoded = pkt::decode_frame(bytes)) line = decoded->summary();
      std::printf("%12lld  %4zu B  %s\n",
                  static_cast<long long>(record.time.usec),
                  record.frame.size(), line.c_str());
    }
    if (records.size() < flow.packets) {
      std::printf("(%llu packets rotated out of the archive)\n",
                  static_cast<unsigned long long>(flow.packets) -
                      static_cast<unsigned long long>(records.size()));
    }
  }
  return 0;
}

std::vector<std::uint8_t> make_tcp_frame(util::Ipv4Addr src,
                                         util::Ipv4Addr dst,
                                         std::uint16_t sport,
                                         std::uint16_t dport,
                                         const char* payload) {
  pkt::DecodedFrame frame;
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  frame.ip = pkt::Ipv4Packet{};
  frame.ip->src = src;
  frame.ip->dst = dst;
  frame.tcp = pkt::TcpSegment{};
  frame.tcp->src_port = sport;
  frame.tcp->dst_port = dport;
  frame.tcp->payload.assign(payload, payload + std::strlen(payload));
  return frame.encode();
}

int cmd_selftest(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // Capture: two flows, enough bytes to force several rotations.
  trace::ArchiveConfig config;
  config.segment_bytes = 2048;
  config.max_segments = 4;
  trace::TraceTap tap("selftest", config, nullptr);
  const auto inmate = util::Ipv4Addr(10, 9, 0, 23);
  const auto web = util::Ipv4Addr(192, 150, 187, 12);
  const auto sink = util::Ipv4Addr(10, 3, 0, 99);
  for (int i = 0; i < 64; ++i) {
    tap.record(util::TimePoint{i * 1000 + 1},
               make_tcp_frame(inmate, web, 1234, 80,
                              "GET /bot.exe HTTP/1.1\r\n\r\n"));
    tap.record(util::TimePoint{i * 1000 + 2},
               make_tcp_frame(web, inmate, 80, 1234, "HTTP/1.1 200 OK\r\n"));
    if (i % 4 == 0)
      tap.record(util::TimePoint{i * 1000 + 3},
                 make_tcp_frame(inmate, sink, 2345, 25, "HELO spam\r\n"));
  }
  tap.annotate({pkt::FlowProto::kTcp, {inmate, 1234}, {web, 80}}, 0,
               shim::Verdict::kRewrite, "botdl");
  tap.annotate({pkt::FlowProto::kTcp, {inmate, 2345}, {sink, 25}}, 0,
               shim::Verdict::kRedirect, "spam", shim::VerdictSource::kCached);

  if (tap.archive().evicted_segments() == 0) {
    std::fprintf(stderr, "selftest: expected rotation to evict segments\n");
    return 1;
  }
  if (!tap.save(dir)) {
    std::fprintf(stderr, "selftest: save failed\n");
    return 1;
  }

  // Reload and check the round trip preserved what eviction retained.
  auto loaded = trace::load_trace(dir);
  if (!loaded) {
    std::fprintf(stderr, "selftest: reload failed\n");
    return 1;
  }
  if (loaded->contents() != tap.contents()) {
    std::fprintf(stderr, "selftest: reloaded capture differs\n");
    return 1;
  }
  if (loaded->index().flow_count() != tap.index().flow_count()) {
    std::fprintf(stderr, "selftest: reloaded flow count differs\n");
    return 1;
  }
  const auto* flow = loaded->index().find(
      {pkt::FlowProto::kTcp, {inmate, 1234}, {web, 80}}, 0);
  if (!flow || !flow->has_verdict ||
      flow->verdict != shim::Verdict::kRewrite || flow->verdict_cached) {
    std::fprintf(stderr, "selftest: verdict lost in round trip\n");
    return 1;
  }
  const auto* spam_flow = loaded->index().find(
      {pkt::FlowProto::kTcp, {inmate, 2345}, {sink, 25}}, 0);
  if (!spam_flow || !spam_flow->verdict_cached) {
    std::fprintf(stderr, "selftest: verdict source lost in round trip\n");
    return 1;
  }

  // Exercise every command against the saved archive.
  if (cmd_list(dir) != 0) return 1;
  std::printf("\n");
  if (cmd_summary(dir) != 0) return 1;
  std::printf("\n");
  if (cmd_extract(dir, 0, "") != 0) return 1;
  std::printf("\nselftest OK (%s)\n", dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "selftest";
  if (cmd == "selftest")
    return cmd_selftest(argc > 2 ? argv[2] : "gq_trace_selftest");
  if (cmd == "list" && argc > 2) return cmd_list(argv[2]);
  if (cmd == "summary" && argc > 2) return cmd_summary(argv[2]);
  if (cmd == "extract" && argc > 3)
    return cmd_extract(argv[2], std::stoul(argv[3]),
                       argc > 4 ? argv[4] : "");
  std::fprintf(stderr,
               "usage: gq_trace selftest [dir] | list <dir> | summary <dir> "
               "| extract <dir> <flow#> [out.pcap]\n");
  return 2;
}
