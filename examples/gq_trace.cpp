// gq_trace: operator CLI over saved trace archives (trace/tap.h) and
// compacted FlowDB stores (flowdb/flowdb.h).
//
//   gq_trace selftest [dir]          capture synthetic traffic, save,
//                                    reload, and exercise every command
//   gq_trace list <dir>              segment table of a saved archive
//   gq_trace summary <dir>           per-flow index summary
//   gq_trace extract <dir> <flow#> [out.pcap]
//                                    extract one flow's packets (O(flow),
//                                    via the index locations — no rescan)
//   gq_trace compact <out.fdb> <dir>...
//                                    compact saved archives into one
//                                    columnar store
//   gq_trace query <store> [filters] [--threads N] [--limit N]
//                                    predicate scan; <store> is a .fdb
//                                    file or a segmented store dir.
//                                    Prints pruning statistics;
//                                    --no-prune disables skip-scans
//   gq_trace stat <store> [filters] [--by verdict|tenant|policy|tap]
//                                    aggregated counters per group over
//                                    the rows matching the filters
//   gq_trace segments <dir>          manifest + zone-map table of a
//                                    segmented store
//   gq_trace appendseg <dir> <archive>...
//                                    compact saved archives into one
//                                    new sealed segment of store <dir>
//   gq_trace compactseg <dir> [max]  deterministic size-tiered merge
//                                    down to at most max segments
//   gq_trace diff <a.fdb> <b.fdb> [--tolerance F]
//                                    verdict-distribution comparison;
//                                    exits nonzero past the tolerance
//                                    (the cross-run regression gate)
//   gq_trace diffgate <workdir>      self-contained gate check: two
//                                    same-seed stores must diff clean,
//                                    a perturbed one must diff dirty
//   gq_trace prunegate <workdir>     self-contained skip-scan gate:
//                                    canned queries over a golden
//                                    segmented store must prune the
//                                    expected segment counts, match
//                                    the unpruned scan byte-for-byte,
//                                    and survive deterministic
//                                    compaction bit-identically
//
// Query filters: --verdict <name|none> --source <shim|cached|table>
// --tenant T --policy P --tap T --job N --vlan N --port N --addr A
// --prefix A/L --proto tcp|udp --since USEC --until USEC
//
// `selftest` doubles as the smoke entry point: with no arguments the
// tool runs it against a temporary directory and exits non-zero on any
// failure.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "flowdb/flowdb.h"
#include "flowdb/query.h"
#include "flowdb/store.h"
#include "packet/frame.h"
#include "packet/pcap.h"
#include "trace/tap.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/time.h"

namespace {

using namespace gq;

const char* proto_name(pkt::FlowProto proto) {
  return proto == pkt::FlowProto::kTcp ? "tcp" : "udp";
}

/// Non-throwing numeric argv parsing (nullopt on junk, range-checked):
/// a non-numeric flow number or flag value is a usage error, never an
/// unhandled exception.
std::optional<std::uint64_t> parse_u64(std::string_view text) {
  const auto value = util::parse_int(text);
  if (!value || *value < 0) return std::nullopt;
  return static_cast<std::uint64_t>(*value);
}

std::optional<std::uint8_t> verdict_from_arg(std::string_view name) {
  // Case-insensitive: verdict_name() prints uppercase, but "drop" is
  // what people type.
  const std::string folded = util::to_lower(name);
  if (folded == "none") return 0;
  for (const auto v :
       {shim::Verdict::kForward, shim::Verdict::kLimit, shim::Verdict::kDrop,
        shim::Verdict::kRedirect, shim::Verdict::kReflect,
        shim::Verdict::kRewrite}) {
    if (folded == util::to_lower(shim::verdict_name(v)))
      return static_cast<std::uint8_t>(v);
  }
  return std::nullopt;
}

std::optional<std::uint8_t> source_from_arg(std::string_view name) {
  for (const auto s : {shim::VerdictSource::kShim, shim::VerdictSource::kCached,
                       shim::VerdictSource::kTable}) {
    if (util::to_lower(name) == shim::verdict_source_name(s))
      return static_cast<std::uint8_t>(s);
  }
  return std::nullopt;
}

int cmd_list(const std::string& dir) {
  auto tap = trace::load_trace(dir);
  if (!tap) {
    std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                 dir.c_str());
    return 1;
  }
  const auto& archive = tap->archive();
  std::printf("archive '%s'  (segment budget %zu B x %zu)\n",
              tap->name().c_str(), archive.config().segment_bytes,
              archive.config().max_segments);
  if (!tap->tenant().empty()) {
    std::printf("tenant %s job %llu\n", tap->tenant().c_str(),
                static_cast<unsigned long long>(tap->job()));
  }
  std::printf(
      "lifetime %llu pkts; evicted %llu segments / %llu pkts / %llu B\n\n",
      static_cast<unsigned long long>(archive.total_packets()),
      static_cast<unsigned long long>(archive.evicted_segments()),
      static_cast<unsigned long long>(archive.evicted_packets()),
      static_cast<unsigned long long>(archive.evicted_bytes()));
  std::printf("%8s %10s %8s %14s %14s\n", "segment", "bytes", "packets",
              "first", "last");
  for (const auto& segment : archive.segments()) {
    std::printf("%8llu %10zu %8zu %14lld %14lld\n",
                static_cast<unsigned long long>(segment.seq),
                segment.pcap.size_bytes(), segment.packets,
                static_cast<long long>(segment.first_time.usec),
                static_cast<long long>(segment.last_time.usec));
  }
  return 0;
}

int cmd_summary(const std::string& dir) {
  auto tap = trace::load_trace(dir);
  if (!tap) {
    std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("archive '%s': %zu flows\n\n", tap->name().c_str(),
              tap->index().flow_count());
  std::size_t n = 0;
  for (const auto& flow : tap->index().flows()) {
    std::printf("#%-3zu %s %s -> %s vlan %u  %llu pkts / %llu B", n++,
                proto_name(flow.key.proto), flow.key.src.str().c_str(),
                flow.key.dst.str().c_str(), flow.vlan,
                static_cast<unsigned long long>(flow.packets),
                static_cast<unsigned long long>(flow.bytes));
    if (!flow.tenant.empty())
      std::printf("  tenant=%s job=%llu", flow.tenant.c_str(),
                  static_cast<unsigned long long>(flow.job));
    if (flow.has_verdict) {
      std::printf("  %s [%s]", shim::verdict_name(flow.verdict),
                  shim::verdict_source_name(flow.verdict_source));
      if (!flow.policy_name.empty())
        std::printf(" (policy %s)", flow.policy_name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_extract(const std::string& dir, std::size_t flow_no,
                const std::string& out_path) {
  auto tap = trace::load_trace(dir);
  if (!tap) {
    std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                 dir.c_str());
    return 1;
  }
  const auto& flows = tap->index().flows();
  if (flow_no >= flows.size()) {
    std::fprintf(stderr, "gq_trace: no flow #%zu (archive has %zu)\n",
                 flow_no, flows.size());
    return 1;
  }
  const auto& flow = flows[flow_no];
  const auto records = tap->extract_flow(flow);
  pkt::PcapWriter out;
  for (const auto& record : records) out.record(record.time, record.frame);
  if (!out_path.empty()) {
    if (!out.save(out_path)) {
      std::fprintf(stderr, "gq_trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %zu of %llu packets of flow #%zu to %s\n",
                records.size(),
                static_cast<unsigned long long>(flow.packets), flow_no,
                out_path.c_str());
  } else {
    for (const auto& record : records) {
      std::string line = "?";
      std::vector<std::uint8_t> bytes = record.frame;
      if (auto decoded = pkt::decode_frame(bytes)) line = decoded->summary();
      std::printf("%12lld  %4zu B  %s\n",
                  static_cast<long long>(record.time.usec),
                  record.frame.size(), line.c_str());
    }
    if (records.size() < flow.packets) {
      std::printf("(%llu packets rotated out of the archive)\n",
                  static_cast<unsigned long long>(flow.packets) -
                      static_cast<unsigned long long>(records.size()));
    }
  }
  return 0;
}

// --- FlowDB subcommands ---------------------------------------------------

int cmd_compact(const std::string& out_path,
                const std::vector<std::string>& dirs) {
  flowdb::Writer writer;
  for (const auto& dir : dirs) {
    auto tap = trace::load_trace(dir);
    if (!tap) {
      std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                   dir.c_str());
      return 1;
    }
    writer.add_tap(*tap);
  }
  if (!writer.save(out_path)) {
    std::fprintf(stderr, "gq_trace: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("compacted %zu archives, %zu flows -> %s\n", dirs.size(),
              writer.row_count(), out_path.c_str());
  return 0;
}

std::optional<flowdb::Reader> open_store(const std::string& path) {
  auto reader = flowdb::Reader::open(path);
  if (!reader) {
    std::fprintf(stderr,
                 "gq_trace: cannot open store %s (missing, corrupt, or "
                 "wrong version)\n",
                 path.c_str());
  }
  return reader;
}

void print_row(const flowdb::Row& row, std::uint64_t i) {
  std::printf("#%-6llu %s %s -> %s vlan %u  %llu pkts / %llu B",
              static_cast<unsigned long long>(i), proto_name(row.proto),
              row.src.str().c_str(), row.dst.str().c_str(), row.vlan,
              static_cast<unsigned long long>(row.packets),
              static_cast<unsigned long long>(row.bytes));
  if (!row.tenant.empty())
    std::printf("  tenant=%s job=%llu", row.tenant.c_str(),
                static_cast<unsigned long long>(row.job));
  if (row.verdict != 0) {
    std::printf("  %s [%s]",
                shim::verdict_name(static_cast<shim::Verdict>(row.verdict)),
                shim::verdict_source_name(
                    static_cast<shim::VerdictSource>(row.source)));
    if (!row.policy.empty()) std::printf(" (policy %s)", row.policy.c_str());
  }
  if (!row.tap.empty()) std::printf("  tap=%s", row.tap.c_str());
  std::printf("\n");
}

/// Parse `--flag value` pairs shared by query/stat/diff. Returns false
/// (with a message) on an unknown flag or malformed value.
struct QueryArgs {
  flowdb::Filter filter;
  unsigned threads = 1;
  std::uint64_t limit = 0;  ///< 0 = unlimited.
  std::string group = "verdict";
  double tolerance = 0.02;
  bool prune = true;
};

bool parse_query_args(int argc, char** argv, int first, QueryArgs& out) {
  for (int i = first; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--no-prune") {  // Boolean flag: no value follows.
      out.prune = false;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "gq_trace: %s needs a value\n", argv[i]);
      return false;
    }
    const std::string_view value = argv[++i];
    const auto number = parse_u64(value);
    if (flag == "--verdict") {
      const auto v = verdict_from_arg(value);
      if (!v) {
        std::fprintf(stderr, "gq_trace: unknown verdict '%s'\n", argv[i]);
        return false;
      }
      out.filter.verdict = *v;
    } else if (flag == "--source") {
      const auto s = source_from_arg(value);
      if (!s) {
        std::fprintf(stderr, "gq_trace: unknown source '%s'\n", argv[i]);
        return false;
      }
      out.filter.source = *s;
    } else if (flag == "--tenant") {
      out.filter.tenant = std::string(value);
    } else if (flag == "--policy") {
      out.filter.policy = std::string(value);
    } else if (flag == "--tap") {
      out.filter.tap = std::string(value);
    } else if (flag == "--job") {
      if (!number) {
        std::fprintf(stderr, "gq_trace: bad job id '%s'\n", argv[i]);
        return false;
      }
      out.filter.job = *number;
    } else if (flag == "--vlan") {
      if (!number || *number > 0xFFFF) {
        std::fprintf(stderr, "gq_trace: bad vlan '%s'\n", argv[i]);
        return false;
      }
      out.filter.vlan = static_cast<std::uint16_t>(*number);
    } else if (flag == "--port") {
      if (!number || *number > 0xFFFF) {
        std::fprintf(stderr, "gq_trace: bad port '%s'\n", argv[i]);
        return false;
      }
      out.filter.port = static_cast<std::uint16_t>(*number);
    } else if (flag == "--addr") {
      const auto addr = util::Ipv4Addr::parse(value);
      if (!addr) {
        std::fprintf(stderr, "gq_trace: bad address '%s'\n", argv[i]);
        return false;
      }
      out.filter.endpoint = *addr;
    } else if (flag == "--prefix") {
      const auto net = util::Ipv4Net::parse(value);
      if (!net) {
        std::fprintf(stderr, "gq_trace: bad prefix '%s'\n", argv[i]);
        return false;
      }
      out.filter.prefix = *net;
    } else if (flag == "--proto") {
      if (value == "tcp") {
        out.filter.proto = pkt::FlowProto::kTcp;
      } else if (value == "udp") {
        out.filter.proto = pkt::FlowProto::kUdp;
      } else {
        std::fprintf(stderr, "gq_trace: bad proto '%s'\n", argv[i]);
        return false;
      }
    } else if (flag == "--since" || flag == "--until") {
      const auto usec = util::parse_int(value);
      if (!usec) {
        std::fprintf(stderr, "gq_trace: bad time '%s'\n", argv[i]);
        return false;
      }
      if (flag == "--since")
        out.filter.since_usec = *usec;
      else
        out.filter.until_usec = *usec;
    } else if (flag == "--threads") {
      if (!number || *number == 0 || *number > 64) {
        std::fprintf(stderr, "gq_trace: bad thread count '%s'\n", argv[i]);
        return false;
      }
      out.threads = static_cast<unsigned>(*number);
    } else if (flag == "--limit") {
      if (!number) {
        std::fprintf(stderr, "gq_trace: bad limit '%s'\n", argv[i]);
        return false;
      }
      out.limit = *number;
    } else if (flag == "--by") {
      if (value != "verdict" && value != "tenant" && value != "policy" &&
          value != "tap") {
        std::fprintf(stderr, "gq_trace: bad group '%s'\n", argv[i]);
        return false;
      }
      out.group = std::string(value);
    } else if (flag == "--tolerance") {
      char* end = nullptr;
      const double tol = std::strtod(argv[i], &end);
      if (!end || *end != '\0' || tol < 0.0 || tol > 1.0) {
        std::fprintf(stderr, "gq_trace: bad tolerance '%s'\n", argv[i]);
        return false;
      }
      out.tolerance = tol;
    } else {
      std::fprintf(stderr, "gq_trace: unknown flag '%.*s'\n",
                   static_cast<int>(flag.size()), flag.data());
      return false;
    }
  }
  return true;
}

void print_scan_stats(const flowdb::ScanStats& stats) {
  std::printf(
      "scan: segments %llu considered / %llu pruned / %llu scanned; "
      "chunks %llu pruned / %llu scanned; rows %llu scanned / %llu "
      "matched; %.3f ms\n",
      static_cast<unsigned long long>(stats.segments_considered),
      static_cast<unsigned long long>(stats.segments_pruned),
      static_cast<unsigned long long>(stats.segments_scanned),
      static_cast<unsigned long long>(stats.chunks_pruned),
      static_cast<unsigned long long>(stats.chunks_scanned),
      static_cast<unsigned long long>(stats.rows_scanned),
      static_cast<unsigned long long>(stats.rows_matched), stats.wall_ms);
}

std::optional<flowdb::SegmentedReader> open_store_dir(
    const std::string& dir) {
  auto store = flowdb::SegmentedReader::open(dir);
  if (!store) {
    std::fprintf(stderr,
                 "gq_trace: cannot open segmented store %s (missing or "
                 "corrupt manifest, or a segment failed validation)\n",
                 dir.c_str());
  }
  return store;
}

/// Run a filter against a `.fdb` file or a segmented store dir,
/// returning global row ids (nullopt on store corruption). `row_of`
/// semantics match scan() ids on both paths.
struct StoreScan {
  std::optional<flowdb::Reader> file;
  std::optional<flowdb::SegmentedReader> dir;
  std::vector<std::uint64_t> matches;
  flowdb::ScanStats stats;

  [[nodiscard]] std::uint64_t rows() const {
    return file ? file->rows() : dir->rows();
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return file ? file->file_bytes() : dir->manifest().total_bytes();
  }
  [[nodiscard]] flowdb::Row row_of(std::uint64_t id) {
    if (file) return file->row(id);
    auto row = dir->row(id);
    return row ? *row : flowdb::Row{};
  }
  [[nodiscard]] std::optional<std::vector<flowdb::Agg>> aggregate(
      flowdb::GroupBy group) {
    if (file) return flowdb::aggregate(*file, matches, group);
    return dir->aggregate(matches, group);
  }
};

std::optional<StoreScan> scan_store(const std::string& path,
                                    const QueryArgs& args) {
  StoreScan result;
  flowdb::ScanOptions options;
  options.threads = args.threads;
  options.prune = args.prune;
  options.stats = &result.stats;
  if (std::filesystem::is_directory(path)) {
    result.dir = open_store_dir(path);
    if (!result.dir) return std::nullopt;
    auto matches = result.dir->scan(args.filter, options);
    if (!matches) {
      std::fprintf(stderr,
                   "gq_trace: scan failed — a segment of %s failed "
                   "validation\n",
                   path.c_str());
      return std::nullopt;
    }
    result.matches = std::move(*matches);
  } else {
    result.file = open_store(path);
    if (!result.file) return std::nullopt;
    result.matches = flowdb::scan(*result.file, args.filter, options);
  }
  return result;
}

int cmd_query(const std::string& path, const QueryArgs& args) {
  auto scan = scan_store(path, args);
  if (!scan) return 1;
  std::uint64_t shown = 0;
  for (const auto i : scan->matches) {
    if (args.limit && shown >= args.limit) break;
    print_row(scan->row_of(i), i);
    ++shown;
  }
  if (args.limit && scan->matches.size() > shown)
    std::printf("(%zu more matches)\n", scan->matches.size() - shown);
  std::printf("%zu of %llu flows matched\n", scan->matches.size(),
              static_cast<unsigned long long>(scan->rows()));
  print_scan_stats(scan->stats);
  return 0;
}

int cmd_stat(const std::string& path, const QueryArgs& args) {
  auto scan = scan_store(path, args);
  if (!scan) return 1;
  const auto group = args.group == "tenant"   ? flowdb::GroupBy::kTenant
                     : args.group == "policy" ? flowdb::GroupBy::kPolicy
                     : args.group == "tap"    ? flowdb::GroupBy::kTap
                                              : flowdb::GroupBy::kVerdict;
  std::printf("store %s: %llu flows, %llu B\n\n", path.c_str(),
              static_cast<unsigned long long>(scan->rows()),
              static_cast<unsigned long long>(scan->bytes()));
  const auto aggs = scan->aggregate(group);
  if (!aggs) {
    std::fprintf(stderr, "gq_trace: aggregation failed on %s\n",
                 path.c_str());
    return 1;
  }
  std::printf("%-16s %10s %14s %16s\n", args.group.c_str(), "flows",
              "packets", "bytes");
  for (const auto& agg : *aggs) {
    std::printf("%-16s %10llu %14llu %16llu\n", agg.label.c_str(),
                static_cast<unsigned long long>(agg.flows),
                static_cast<unsigned long long>(agg.packets),
                static_cast<unsigned long long>(agg.bytes));
  }
  print_scan_stats(scan->stats);
  return 0;
}

// --- Segmented-store subcommands ------------------------------------------

int cmd_segments(const std::string& dir) {
  auto store = open_store_dir(dir);
  if (!store) return 1;
  std::printf("store %s: %zu segments, %llu rows, %llu B\n\n", dir.c_str(),
              store->segment_count(),
              static_cast<unsigned long long>(store->rows()),
              static_cast<unsigned long long>(store->manifest().total_bytes()));
  std::printf("%-22s %8s %10s %16s %14s %14s %11s %13s\n", "segment", "rows",
              "bytes", "footer-hash", "first", "last", "vlan", "port");
  for (std::size_t i = 0; i < store->segment_count(); ++i) {
    const auto& info = store->manifest().segments[i];
    const auto& zone = store->segment_zone(i);
    if (zone.row_count == 0) {
      std::printf("%-22s %8llu %10llu %016llx %14s %14s %11s %13s\n",
                  info.file.c_str(),
                  static_cast<unsigned long long>(info.rows),
                  static_cast<unsigned long long>(info.bytes),
                  static_cast<unsigned long long>(info.footer_hash), "-",
                  "-", "-", "-");
      continue;
    }
    std::printf("%-22s %8llu %10llu %016llx %14lld %14lld %5u-%-5u "
                "%6u-%-6u\n",
                info.file.c_str(),
                static_cast<unsigned long long>(info.rows),
                static_cast<unsigned long long>(info.bytes),
                static_cast<unsigned long long>(info.footer_hash),
                static_cast<long long>(zone.min_first_usec),
                static_cast<long long>(zone.max_last_usec), zone.min_vlan,
                zone.max_vlan, zone.min_port, zone.max_port);
  }
  return 0;
}

int cmd_appendseg(const std::string& dir,
                  const std::vector<std::string>& archives) {
  auto store = flowdb::SegmentedStore::open(dir);
  if (!store) {
    std::fprintf(stderr, "gq_trace: cannot open store dir %s\n",
                 dir.c_str());
    return 1;
  }
  flowdb::Writer writer;
  for (const auto& archive : archives) {
    auto tap = trace::load_trace(archive);
    if (!tap) {
      std::fprintf(stderr, "gq_trace: cannot load archive at %s\n",
                   archive.c_str());
      return 1;
    }
    writer.add_tap(*tap);
  }
  if (!store->append_segment(writer)) {
    std::fprintf(stderr, "gq_trace: segment append failed in %s\n",
                 dir.c_str());
    return 1;
  }
  if (writer.row_count() == 0) {
    std::printf("no flows in %zu archives; store unchanged\n",
                archives.size());
    return 0;
  }
  std::printf("appended %zu archives, %zu flows -> %s/%s (%zu segments)\n",
              archives.size(), writer.row_count(), dir.c_str(),
              store->manifest().segments.back().file.c_str(),
              store->manifest().segments.size());
  return 0;
}

int cmd_compactseg(const std::string& dir, std::size_t max_segments) {
  auto store = flowdb::SegmentedStore::open(dir);
  if (!store) {
    std::fprintf(stderr, "gq_trace: cannot open store dir %s\n",
                 dir.c_str());
    return 1;
  }
  const std::size_t before = store->manifest().segments.size();
  if (!store->compact_segments(max_segments)) {
    std::fprintf(stderr, "gq_trace: compaction failed in %s\n", dir.c_str());
    return 1;
  }
  std::printf("compacted %zu -> %zu segments (%llu rows, %llu B)\n", before,
              store->manifest().segments.size(),
              static_cast<unsigned long long>(store->manifest().total_rows()),
              static_cast<unsigned long long>(
                  store->manifest().total_bytes()));
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b,
             double tolerance) {
  const auto a = open_store(path_a);
  const auto b = open_store(path_b);
  if (!a || !b) return 1;
  const auto diff = flowdb::diff_verdicts(*a, *b);
  std::printf("%-10s %10s %8s %10s %8s %8s\n", "verdict", "a", "a%", "b",
              "b%", "delta");
  for (const auto& entry : diff.entries) {
    std::printf("%-10s %10llu %7.2f%% %10llu %7.2f%% %7.4f\n",
                entry.label.c_str(),
                static_cast<unsigned long long>(entry.count_a),
                entry.share_a * 100.0,
                static_cast<unsigned long long>(entry.count_b),
                entry.share_b * 100.0, entry.delta);
  }
  std::printf("rows a=%llu b=%llu  max delta %.4f  tolerance %.4f  -> %s\n",
              static_cast<unsigned long long>(diff.rows_a),
              static_cast<unsigned long long>(diff.rows_b), diff.max_delta,
              tolerance, diff.within(tolerance) ? "PASS" : "FAIL");
  return diff.within(tolerance) ? 0 : 1;
}

// --- Synthetic stores (diffgate, selftest) --------------------------------

/// Deterministic synthetic store: same seed → byte-identical file.
/// `drop_bias` skews the verdict mix (the "perturbed distribution" the
/// gate must catch).
flowdb::Writer synth_store(std::uint64_t seed, std::size_t rows,
                           double drop_bias) {
  util::Rng rng(seed);
  const char* tenants[] = {"acme", "umbrella", "tyrell"};
  flowdb::Writer writer;
  for (std::size_t i = 0; i < rows; ++i) {
    flowdb::Row row;
    row.proto = rng.chance(0.7) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
    row.src = {util::Ipv4Addr(10, 9, 0, static_cast<std::uint8_t>(
                                            rng.below(200) + 1)),
               static_cast<std::uint16_t>(rng.range(1024, 65000))};
    row.dst = {util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
               static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 25)};
    row.vlan = static_cast<std::uint16_t>(100 + rng.below(16));
    row.tenant = tenants[rng.below(std::size(tenants))];
    row.job = rng.below(64) + 1;
    const double roll = rng.uniform();
    row.verdict = static_cast<std::uint8_t>(
        roll < drop_bias          ? shim::Verdict::kDrop
        : roll < drop_bias + 0.30 ? shim::Verdict::kForward
        : roll < drop_bias + 0.45 ? shim::Verdict::kRewrite
                                  : shim::Verdict::kRedirect);
    row.source = static_cast<std::uint8_t>(
        rng.chance(0.5) ? shim::VerdictSource::kCached
                        : shim::VerdictSource::kShim);
    row.policy = row.verdict == static_cast<std::uint8_t>(shim::Verdict::kDrop)
                     ? "quarantine"
                     : "default";
    row.tap = "synth";
    row.packets = rng.below(50) + 1;
    row.bytes = row.packets * (rng.below(1000) + 60);
    row.first_usec = static_cast<std::int64_t>(i) * 1000;
    row.last_usec = row.first_usec + static_cast<std::int64_t>(rng.below(5000));
    writer.add(std::move(row));
  }
  return writer;
}

/// The committed-golden-seed regression gate: two same-seed stores must
/// diff clean; a deliberately perturbed verdict mix must trip the gate.
/// Golden seeds match the trace replay regression (tests/trace_test.cc).
int cmd_diffgate(const std::string& workdir) {
  constexpr std::uint64_t kGoldenSeedA = 0x6071;
  constexpr std::uint64_t kGoldenSeedB = 0xC0FFEE;
  constexpr std::size_t kRows = 4096;
  constexpr double kTolerance = 0.02;

  std::error_code ec;
  std::filesystem::create_directories(workdir, ec);
  if (ec) {
    std::fprintf(stderr, "diffgate: cannot create %s\n", workdir.c_str());
    return 1;
  }
  const std::string run1 = workdir + "/run1.fdb";
  const std::string run2 = workdir + "/run2.fdb";
  const std::string perturbed = workdir + "/perturbed.fdb";
  if (!synth_store(kGoldenSeedA, kRows, 0.25).save(run1) ||
      !synth_store(kGoldenSeedA, kRows, 0.25).save(run2) ||
      !synth_store(kGoldenSeedB, kRows, 0.55).save(perturbed)) {
    std::fprintf(stderr, "diffgate: store write failed\n");
    return 1;
  }
  std::printf("== same-seed rerun (must PASS) ==\n");
  if (cmd_diff(run1, run2, kTolerance) != 0) {
    std::fprintf(stderr, "diffgate: same-seed rerun FAILED the gate\n");
    return 1;
  }
  std::printf("\n== perturbed distribution (must FAIL) ==\n");
  if (cmd_diff(run1, perturbed, kTolerance) == 0) {
    std::fprintf(stderr,
                 "diffgate: perturbed distribution slipped past the gate\n");
    return 1;
  }
  std::printf("\ndiffgate OK (%s)\n", workdir.c_str());
  return 0;
}

// --- Prune gate -----------------------------------------------------------

/// One synthetic segment for the skip-scan gate. Every prunable
/// dimension is keyed off the segment index so segments are separable:
/// disjoint 10 s time slabs, one vlan per segment, tenant index%6, and
/// per-segment /24s for both endpoints. The endpoint pool is small
/// (~264 distinct addresses) so the 1 KiB bloom stays far from
/// saturation and address pruning is exact in practice.
flowdb::Writer synth_segment(std::uint64_t seed, std::size_t index,
                             std::size_t rows) {
  constexpr std::int64_t kSlabUsec = 10'000'000;
  util::Rng rng(seed + index * 7919);
  flowdb::Writer writer;
  for (std::size_t i = 0; i < rows; ++i) {
    flowdb::Row row;
    row.proto = rng.chance(0.7) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
    row.src = {util::Ipv4Addr(10, 9, static_cast<std::uint8_t>(index),
                              static_cast<std::uint8_t>(rng.below(200) + 1)),
               static_cast<std::uint16_t>(rng.range(1024, 65000))};
    row.dst = {util::Ipv4Addr(10, static_cast<std::uint8_t>(100 + index), 0,
                              static_cast<std::uint8_t>(rng.below(64) + 1)),
               static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 25)};
    row.vlan = static_cast<std::uint16_t>(100 + index);
    row.tenant = util::format("t%zu", index % 6);
    row.job = index * 100 + rng.below(8) + 1;
    const double roll = rng.uniform();
    row.verdict = static_cast<std::uint8_t>(
        roll < 0.25   ? shim::Verdict::kDrop
        : roll < 0.55 ? shim::Verdict::kForward
                      : shim::Verdict::kRedirect);
    row.source = static_cast<std::uint8_t>(
        rng.chance(0.5) ? shim::VerdictSource::kCached
                        : shim::VerdictSource::kShim);
    row.policy = "default";
    row.tap = "synth";
    row.packets = rng.below(50) + 1;
    row.bytes = row.packets * (rng.below(1000) + 60);
    row.first_usec = static_cast<std::int64_t>(index) * kSlabUsec +
                     static_cast<std::int64_t>(i) * 2000;
    row.last_usec = row.first_usec + static_cast<std::int64_t>(rng.below(1500));
    writer.add(std::move(row));
  }
  return writer;
}

bool build_prune_store(const std::string& dir, std::size_t segments,
                       std::size_t rows) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  auto store = flowdb::SegmentedStore::open(dir);
  if (!store) return false;
  for (std::size_t s = 0; s < segments; ++s) {
    if (!store->append_segment(synth_segment(0x5EC5, s, rows))) return false;
  }
  return true;
}

std::optional<std::string> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string out;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

/// Byte-identity of two store dirs: manifests equal, every listed
/// segment file equal.
bool stores_identical(const std::string& a, const std::string& b) {
  const auto ma = slurp(a + "/" + flowdb::kManifestName);
  const auto mb = slurp(b + "/" + flowdb::kManifestName);
  if (!ma || !mb || *ma != *mb) return false;
  const auto manifest = flowdb::StoreManifest::parse(*ma);
  if (!manifest) return false;
  for (const auto& seg : manifest->segments) {
    const auto fa = slurp(a + "/" + seg.file);
    const auto fb = slurp(b + "/" + seg.file);
    if (!fa || !fb || *fa != *fb) return false;
  }
  return true;
}

/// The committed skip-scan gate: canned selective queries over a golden
/// 12-segment store must (a) prune exactly the expected segment count,
/// (b) return byte-identical matches with pruning disabled, and
/// (c) survive build-twice and compact-twice byte-identically with
/// unchanged query results (compaction preserves global row ids).
int cmd_prunegate(const std::string& workdir) {
  constexpr std::size_t kSegments = 12;
  constexpr std::size_t kRowsPerSegment = 4096;
  constexpr std::int64_t kSlabUsec = 10'000'000;

  std::error_code ec;
  std::filesystem::create_directories(workdir, ec);
  if (ec) {
    std::fprintf(stderr, "prunegate: cannot create %s\n", workdir.c_str());
    return 1;
  }
  const std::string dir1 = workdir + "/store1";
  const std::string dir2 = workdir + "/store2";
  if (!build_prune_store(dir1, kSegments, kRowsPerSegment) ||
      !build_prune_store(dir2, kSegments, kRowsPerSegment)) {
    std::fprintf(stderr, "prunegate: store build failed\n");
    return 1;
  }
  if (!stores_identical(dir1, dir2)) {
    std::fprintf(stderr, "prunegate: same-input stores differ on disk\n");
    return 1;
  }

  struct Canned {
    const char* name;
    flowdb::Filter filter;
    std::uint64_t expect_pruned;
  };
  std::vector<Canned> queries;
  {
    Canned q;
    q.name = "time-window(seg5)";
    q.filter.since_usec = 5 * kSlabUsec + 1'000'000;
    q.filter.until_usec = 5 * kSlabUsec + 3'000'000;
    q.expect_pruned = 11;
    queries.push_back(q);
  }
  {
    Canned q;
    q.name = "tenant(t3)";
    q.filter.tenant = "t3";
    q.expect_pruned = 10;  // t3 = segments 3 and 9.
    queries.push_back(q);
  }
  {
    Canned q;
    q.name = "addr(10.107.0.5)";
    q.filter.endpoint = util::Ipv4Addr(10, 107, 0, 5);  // dst /24 of seg 7.
    q.expect_pruned = 11;
    queries.push_back(q);
  }
  {
    Canned q;
    q.name = "vlan(104)";
    q.filter.vlan = 104;
    q.expect_pruned = 11;
    queries.push_back(q);
  }

  // Run the canned queries against a store dir; with `check_pruning`
  // also enforce the pinned prune counts and prune-on/off identity.
  const auto run_queries =
      [&](const std::string& dir, bool check_pruning,
          std::vector<std::vector<std::uint64_t>>* out) -> bool {
    auto store = flowdb::SegmentedReader::open(dir);
    if (!store) {
      std::fprintf(stderr, "prunegate: cannot open %s\n", dir.c_str());
      return false;
    }
    for (const auto& q : queries) {
      flowdb::ScanStats stats;
      flowdb::ScanOptions options;
      options.threads = 2;
      options.stats = &stats;
      const auto pruned = store->scan(q.filter, options);
      if (!pruned) {
        std::fprintf(stderr, "prunegate: %s: scan failed\n", q.name);
        return false;
      }
      if (check_pruning) {
        flowdb::ScanOptions full = options;
        full.prune = false;
        full.stats = nullptr;  // Keep the pruned run's stats intact.
        const auto unpruned = store->scan(q.filter, full);
        if (!unpruned || *unpruned != *pruned) {
          std::fprintf(stderr,
                       "prunegate: %s: pruned scan differs from full scan\n",
                       q.name);
          return false;
        }
        std::printf("%-20s %6zu matches, %llu/%zu segments pruned, "
                    "%llu chunks pruned\n",
                    q.name, pruned->size(),
                    static_cast<unsigned long long>(stats.segments_pruned),
                    store->segment_count(),
                    static_cast<unsigned long long>(stats.chunks_pruned));
        if (pruned->empty()) {
          std::fprintf(stderr, "prunegate: %s matched nothing\n", q.name);
          return false;
        }
        if (stats.segments_pruned != q.expect_pruned) {
          std::fprintf(
              stderr, "prunegate: %s pruned %llu segments, want %llu\n",
              q.name, static_cast<unsigned long long>(stats.segments_pruned),
              static_cast<unsigned long long>(q.expect_pruned));
          return false;
        }
      }
      if (out) out->push_back(*pruned);
    }
    return true;
  };

  std::vector<std::vector<std::uint64_t>> before;
  if (!run_queries(dir1, true, &before)) return 1;

  // Deterministic compaction: both stores compact to identical bytes,
  // and global row ids survive (order-preserving merges), so every
  // canned query returns the same matches afterwards.
  const auto compact = [](const std::string& dir) {
    auto store = flowdb::SegmentedStore::open(dir);
    return store && store->compact_segments(4);
  };
  if (!compact(dir1) || !compact(dir2)) {
    std::fprintf(stderr, "prunegate: compaction failed\n");
    return 1;
  }
  if (!stores_identical(dir1, dir2)) {
    std::fprintf(stderr, "prunegate: compacted stores differ on disk\n");
    return 1;
  }
  std::vector<std::vector<std::uint64_t>> after;
  if (!run_queries(dir1, false, &after)) return 1;
  if (after != before) {
    std::fprintf(stderr,
                 "prunegate: query results changed across compaction\n");
    return 1;
  }
  std::printf("\nprunegate OK (%s)\n", workdir.c_str());
  return 0;
}

// --- Selftest -------------------------------------------------------------

std::vector<std::uint8_t> make_tcp_frame(util::Ipv4Addr src,
                                         util::Ipv4Addr dst,
                                         std::uint16_t sport,
                                         std::uint16_t dport,
                                         const char* payload) {
  pkt::DecodedFrame frame;
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  frame.ip = pkt::Ipv4Packet{};
  frame.ip->src = src;
  frame.ip->dst = dst;
  frame.tcp = pkt::TcpSegment{};
  frame.tcp->src_port = sport;
  frame.tcp->dst_port = dport;
  frame.tcp->payload.assign(payload, payload + std::strlen(payload));
  return frame.encode();
}

int cmd_selftest(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // Capture: two flows, enough bytes to force several rotations.
  trace::ArchiveConfig config;
  config.segment_bytes = 2048;
  config.max_segments = 4;
  trace::TraceTap tap("selftest", config, nullptr);
  tap.set_context("selftest-tenant", 7);
  const auto inmate = util::Ipv4Addr(10, 9, 0, 23);
  const auto web = util::Ipv4Addr(192, 150, 187, 12);
  const auto sink = util::Ipv4Addr(10, 3, 0, 99);
  for (int i = 0; i < 64; ++i) {
    tap.record(util::TimePoint{i * 1000 + 1},
               make_tcp_frame(inmate, web, 1234, 80,
                              "GET /bot.exe HTTP/1.1\r\n\r\n"));
    tap.record(util::TimePoint{i * 1000 + 2},
               make_tcp_frame(web, inmate, 80, 1234, "HTTP/1.1 200 OK\r\n"));
    if (i % 4 == 0)
      tap.record(util::TimePoint{i * 1000 + 3},
                 make_tcp_frame(inmate, sink, 2345, 25, "HELO spam\r\n"));
  }
  tap.annotate({pkt::FlowProto::kTcp, {inmate, 1234}, {web, 80}}, 0,
               shim::Verdict::kRewrite, "botdl");
  tap.annotate({pkt::FlowProto::kTcp, {inmate, 2345}, {sink, 25}}, 0,
               shim::Verdict::kRedirect, "spam", shim::VerdictSource::kCached);

  if (tap.archive().evicted_segments() == 0) {
    std::fprintf(stderr, "selftest: expected rotation to evict segments\n");
    return 1;
  }
  if (!tap.save(dir)) {
    std::fprintf(stderr, "selftest: save failed\n");
    return 1;
  }

  // Reload and check the round trip preserved what eviction retained.
  auto loaded = trace::load_trace(dir);
  if (!loaded) {
    std::fprintf(stderr, "selftest: reload failed\n");
    return 1;
  }
  if (loaded->contents() != tap.contents()) {
    std::fprintf(stderr, "selftest: reloaded capture differs\n");
    return 1;
  }
  if (loaded->index().flow_count() != tap.index().flow_count()) {
    std::fprintf(stderr, "selftest: reloaded flow count differs\n");
    return 1;
  }
  if (loaded->tenant() != "selftest-tenant" || loaded->job() != 7) {
    std::fprintf(stderr, "selftest: tenant/job lost in round trip\n");
    return 1;
  }
  const auto* flow = loaded->index().find(
      {pkt::FlowProto::kTcp, {inmate, 1234}, {web, 80}}, 0);
  if (!flow || !flow->has_verdict ||
      flow->verdict != shim::Verdict::kRewrite || flow->verdict_cached) {
    std::fprintf(stderr, "selftest: verdict lost in round trip\n");
    return 1;
  }
  if (flow->tenant != "selftest-tenant" || flow->job != 7) {
    std::fprintf(stderr, "selftest: flow attribution lost in round trip\n");
    return 1;
  }
  const auto* spam_flow = loaded->index().find(
      {pkt::FlowProto::kTcp, {inmate, 2345}, {sink, 25}}, 0);
  if (!spam_flow || !spam_flow->verdict_cached) {
    std::fprintf(stderr, "selftest: verdict source lost in round trip\n");
    return 1;
  }

  // Compact the archive into a FlowDB store and drive the query path.
  const std::string store_path = dir + "/store.fdb";
  if (cmd_compact(store_path, {dir}) != 0) return 1;
  auto reader = flowdb::Reader::open(store_path);
  if (!reader || reader->rows() != tap.index().flow_count()) {
    std::fprintf(stderr, "selftest: compacted store row count differs\n");
    return 1;
  }
  flowdb::Filter rewrite_filter;
  rewrite_filter.verdict = static_cast<std::uint8_t>(shim::Verdict::kRewrite);
  const auto serial = flowdb::scan(*reader, rewrite_filter);
  if (serial.size() != 1) {
    std::fprintf(stderr, "selftest: rewrite query found %zu flows, want 1\n",
                 serial.size());
    return 1;
  }
  flowdb::ScanOptions four_threads;
  four_threads.threads = 4;
  if (flowdb::scan(*reader, rewrite_filter, four_threads) != serial) {
    std::fprintf(stderr, "selftest: parallel scan differs from serial\n");
    return 1;
  }
  flowdb::Filter tenant_filter;
  tenant_filter.tenant = "selftest-tenant";
  if (flowdb::scan(*reader, tenant_filter).size() != reader->rows()) {
    std::fprintf(stderr, "selftest: tenant query missed flows\n");
    return 1;
  }
  if (!flowdb::diff_verdicts(*reader, *reader).within(0.0)) {
    std::fprintf(stderr, "selftest: store does not diff clean vs itself\n");
    return 1;
  }

  // Segmented-store round trip over the same archive: two appends,
  // manifest table, a directory query (must see both copies), compact.
  const std::string seg_dir = dir + "/segstore";
  if (cmd_appendseg(seg_dir, {dir}) != 0) return 1;
  if (cmd_appendseg(seg_dir, {dir}) != 0) return 1;
  auto seg_store = flowdb::SegmentedReader::open(seg_dir);
  if (!seg_store || seg_store->segment_count() != 2 ||
      seg_store->rows() != 2 * reader->rows()) {
    std::fprintf(stderr, "selftest: segmented store round trip failed\n");
    return 1;
  }
  flowdb::ScanStats seg_stats;
  flowdb::ScanOptions seg_options;
  seg_options.stats = &seg_stats;
  const auto seg_matches = seg_store->scan(rewrite_filter, seg_options);
  if (!seg_matches || seg_matches->size() != 2 * serial.size()) {
    std::fprintf(stderr, "selftest: segmented scan missed flows\n");
    return 1;
  }
  if (seg_stats.segments_considered != 2) {
    std::fprintf(stderr, "selftest: scan statistics not populated\n");
    return 1;
  }
  if (cmd_segments(seg_dir) != 0) return 1;
  std::printf("\n");
  if (cmd_compactseg(seg_dir, 1) != 0) return 1;
  std::printf("\n");

  // Exercise every command against the saved artifacts.
  if (cmd_list(dir) != 0) return 1;
  std::printf("\n");
  if (cmd_summary(dir) != 0) return 1;
  std::printf("\n");
  if (cmd_extract(dir, 0, "") != 0) return 1;
  std::printf("\n");
  QueryArgs stat_args;
  if (cmd_stat(store_path, stat_args) != 0) return 1;
  std::printf("\n");
  if (cmd_stat(seg_dir, stat_args) != 0) return 1;
  std::printf("\n");
  if (cmd_diff(store_path, store_path, 0.0) != 0) return 1;
  std::printf("\n");
  if (cmd_diffgate(dir + "/diffgate") != 0) return 1;
  std::printf("\nselftest OK (%s)\n", dir.c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: gq_trace selftest [dir] | list <dir> | summary <dir>\n"
      "       gq_trace extract <dir> <flow#> [out.pcap]\n"
      "       gq_trace compact <out.fdb> <dir>...\n"
      "       gq_trace query <store> [filters] [--threads N] [--limit N] "
      "[--no-prune]\n"
      "       gq_trace stat <store> [filters] [--by "
      "verdict|tenant|policy|tap]\n"
      "       gq_trace segments <dir> | appendseg <dir> <archive>...\n"
      "       gq_trace compactseg <dir> [max]\n"
      "       gq_trace diff <a.fdb> <b.fdb> [--tolerance F]\n"
      "       gq_trace diffgate <workdir> | prunegate <workdir>\n"
      "filters: --verdict V|none --source shim|cached|table --tenant T\n"
      "         --policy P --tap T --job N --vlan N --port N --addr A\n"
      "         --prefix A/L --proto tcp|udp --since USEC --until USEC\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "selftest";
  if (cmd == "selftest")
    return cmd_selftest(argc > 2 ? argv[2] : "gq_trace_selftest");
  if (cmd == "list" && argc > 2) return cmd_list(argv[2]);
  if (cmd == "summary" && argc > 2) return cmd_summary(argv[2]);
  if (cmd == "extract" && argc > 3) {
    // A non-numeric flow number is a usage error, not a crash.
    const auto flow_no = parse_u64(argv[3]);
    if (!flow_no) {
      std::fprintf(stderr, "gq_trace: bad flow number '%s'\n", argv[3]);
      return usage();
    }
    return cmd_extract(argv[2], static_cast<std::size_t>(*flow_no),
                       argc > 4 ? argv[4] : "");
  }
  if (cmd == "compact" && argc > 3) {
    std::vector<std::string> dirs(argv + 3, argv + argc);
    return cmd_compact(argv[2], dirs);
  }
  if (cmd == "query" && argc > 2) {
    QueryArgs args;
    if (!parse_query_args(argc, argv, 3, args)) return usage();
    return cmd_query(argv[2], args);
  }
  if (cmd == "stat" && argc > 2) {
    QueryArgs args;
    if (!parse_query_args(argc, argv, 3, args)) return usage();
    return cmd_stat(argv[2], args);
  }
  if (cmd == "diff" && argc > 3) {
    QueryArgs args;
    if (!parse_query_args(argc, argv, 4, args)) return usage();
    return cmd_diff(argv[2], argv[3], args.tolerance);
  }
  if (cmd == "segments" && argc > 2) return cmd_segments(argv[2]);
  if (cmd == "appendseg" && argc > 3) {
    std::vector<std::string> archives(argv + 3, argv + argc);
    return cmd_appendseg(argv[2], archives);
  }
  if (cmd == "compactseg" && argc > 2) {
    std::size_t max_segments = flowdb::kDefaultMaxSegments;
    if (argc > 3) {
      const auto n = parse_u64(argv[3]);
      if (!n || *n == 0) {
        std::fprintf(stderr, "gq_trace: bad segment bound '%s'\n", argv[3]);
        return usage();
      }
      max_segments = static_cast<std::size_t>(*n);
    }
    return cmd_compactseg(argv[2], max_segments);
  }
  if (cmd == "diffgate" && argc > 2) return cmd_diffgate(argv[2]);
  if (cmd == "prunegate" && argc > 2) return cmd_prunegate(argv[2]);
  return usage();
}
