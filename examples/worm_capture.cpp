// Worm-era honeyfarm (paper Table 1): a subfarm of vulnerable inmates
// under the WormFarm redirect policy. A seed inmate is infected with a
// self-propagating worm; its outbound scans are REDIRECTed back to the
// other inmates, so the infection chain stays inside the farm while the
// capture log records every propagation (executable, family, number of
// connections, incubation time).
//
//   $ ./example_worm_capture
#include <cstdio>
#include <map>

#include "containment/policies.h"
#include "core/farm.h"
#include "malware/worm.h"
#include "util/strings.h"

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  core::Farm farm;
  auto& sub = farm.add_subfarm("WormFarm");
  sub.containment().bind_policy(
      16, 31, std::make_shared<cs::WormFarmPolicy>(sub.policy_env()));

  const mal::WormFamily family = mal::table1_families()[0];  // Korgo.V.
  std::printf("Deploying %s (%s): port %u, %d conns/infection\n\n",
              family.name.c_str(), family.executable.c_str(), family.port,
              family.conns_per_infection);

  std::vector<mal::InfectionEvent> log;
  util::TimePoint seed_time{};
  auto on_infection = [&](const mal::InfectionEvent& event) {
    log.push_back(event);
    std::printf("[%8s] inmate on VLAN %u infected by %s\n",
                util::format_duration(event.when - seed_time).c_str(),
                event.victim_vlan, event.family.c_str());
  };

  std::vector<inm::Inmate*> inmates;
  for (int i = 0; i < 8; ++i)
    inmates.push_back(&sub.create_inmate(inm::HostingKind::kVm));
  farm.run_for(util::minutes(2));  // Boot the population.

  for (std::size_t i = 0; i < inmates.size(); ++i) {
    inmates[i]->infect_with(
        std::make_unique<mal::WormHostBehavior>(
            family, inmates[i]->vlan(), /*seed=*/i == 0, on_infection,
            farm.rng().fork()),
        family.executable);
  }
  seed_time = farm.loop().now();
  std::printf("Seed infected at t=0; running 10 simulated minutes...\n\n");
  farm.run_for(util::minutes(10));

  std::printf("\nCaptured %zu propagation events.\n", log.size());
  if (!log.empty()) {
    std::printf("Incubation (seed -> first victim): %s\n",
                util::format_duration(log.front().when - seed_time).c_str());
  }
  auto totals = farm.reporter().verdict_totals();
  std::printf("Containment: %llu REDIRECTs, %llu FORWARDs (must be 0)\n",
              static_cast<unsigned long long>(
                  totals[shim::Verdict::kRedirect]),
              static_cast<unsigned long long>(
                  totals[shim::Verdict::kForward]));
  return 0;
}
