// Quickstart: the smallest complete GQ farm.
//
// One subfarm, one inmate, a catch-all sink, an SMTP sink, a simulated
// C&C server on the "Internet" — run a spambot for a simulated hour
// under containment and print the Figure 7 style activity report.
//
//   $ ./example_quickstart
#include <cstdio>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  core::Farm farm;

  // --- The simulated Internet -----------------------------------------
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  task.subject = "totally legitimate offer";
  task.body = "click here";
  cc.set_document("/c2/tasks", task.serialize());

  auto& victim = farm.add_external_host("victim-mx", Ipv4Addr(64, 12, 88, 7));
  ext::PolicedSmtpServer victim_smtp(victim, 25, &farm.cbl());

  // --- The subfarm ------------------------------------------------------
  auto& sub = farm.add_subfarm("Quickstart");
  sub.add_catchall_sink();
  sinks::SmtpSinkConfig sink_config;
  sink_config.port = 2526;
  auto& sink = sub.add_smtp_sink(sink_config, "bannersmtpsink");
  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});

  sub.containment().samples().add("grum.100818.000.exe");
  sub.catalog().register_prototype(
      "grum.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "grum";
        config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
        config.send_interval = util::seconds(2);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });

  sub.configure_containment(R"(
[VLAN 16-19]
Decider = Grum
Infection = grum.100818.*.exe
Trigger = *:25/tcp / 30min < 1 -> revert
)");

  sub.create_inmate(inm::HostingKind::kVm);

  // --- Run one simulated hour ------------------------------------------
  farm.run_for(util::hours(1));

  std::printf("%s\n", farm.report().c_str());
  std::printf("Harvested %zu spam messages; %llu reached the real victim.\n",
              sink.harvest().size(),
              static_cast<unsigned long long>(
                  victim_smtp.messages_accepted()));
  return 0;
}
