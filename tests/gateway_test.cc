// Integration tests of the full containment data path: a miniature farm
// (inmate switch + management switch + external "Internet" + gateway +
// containment server) exercising every verdict of Figure 2 end-to-end —
// through real DHCP, real TCP, shim injection/stripping with sequence
// bumping, flow splicing, NAT, nonce-port proxy legs, the safety
// filter, and inbound-flow handling.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "containment/handlers.h"
#include "containment/policies.h"
#include "containment/server.h"
#include "gateway/gateway.h"
#include "gateway/router.h"
#include "net/stack.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "services/dhcp.h"
#include "services/http.h"
#include "util/bytes.h"

namespace gq {
namespace {

using util::Endpoint;
using util::Ipv4Addr;
using util::Ipv4Net;

constexpr std::uint16_t kCsPort = 6666;
const Ipv4Addr kGwMgmt(10, 3, 0, 1);
const Ipv4Addr kCsAddr(10, 3, 0, 2);
const Ipv4Addr kSinkAddr(10, 3, 0, 3);
const Ipv4Addr kWebAddr(192, 150, 187, 12);
const Ipv4Net kMgmtNet(Ipv4Addr(10, 3, 0, 0), 24);
const Ipv4Net kInternalNet(Ipv4Addr(10, 0, 0, 0), 24);
const Ipv4Net kExternalNet(Ipv4Addr(198, 18, 0, 0), 24);

// A one-subfarm farm with two inmates, a containment server, a catch-all
// TCP+UDP sink, and one external web server.
struct FarmFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::VlanSwitch inmate_sw{loop, "isw", 6};
  sim::VlanSwitch mgmt_sw{loop, "msw", 6};
  sim::VlanSwitch ext_sw{loop, "esw", 6};
  std::unique_ptr<gw::Gateway> gateway;
  gw::SubfarmRouter* subfarm = nullptr;

  net::HostStack cs_host{loop, "cs", util::MacAddr::local(0x101), 11};
  net::HostStack sink_host{loop, "sink", util::MacAddr::local(0x102), 12};
  net::HostStack web{loop, "web", util::MacAddr::local(0x103), 13};
  net::HostStack inmate1{loop, "inmate1", util::MacAddr::local(0x201), 21};
  net::HostStack inmate2{loop, "inmate2", util::MacAddr::local(0x202), 22};
  std::unique_ptr<svc::DhcpClient> dhcp1, dhcp2;
  std::unique_ptr<cs::ContainmentServer> cs;
  std::vector<gw::FlowEvent> events;

  // Sink bookkeeping.
  int sink_tcp_accepts = 0;
  std::string sink_tcp_data;
  int sink_udp_datagrams = 0;

  void SetUp() override {
    gw::GatewayConfig gwc;
    gwc.upstream_addr = Ipv4Addr(203, 0, 113, 1);
    gwc.mgmt_addr = kGwMgmt;
    gwc.mgmt_net = kMgmtNet;
    gateway = std::make_unique<gw::Gateway>(loop, gwc);
    gateway->set_event_handler(
        [this](const gw::FlowEvent& event) { events.push_back(event); });

    gw::SubfarmConfig sfc;
    sfc.name = "TestFarm";
    sfc.vlan_first = 16;
    sfc.vlan_last = 17;  // 18-19 are free for second-subfarm tests.
    sfc.internal_net = kInternalNet;
    sfc.external_net = kExternalNet;
    sfc.containment_server = {kCsAddr, kCsPort};
    subfarm = &gateway->add_subfarm(sfc);

    // Wiring: inmates on access ports, gateway on a trunk.
    inmate_sw.set_access(0, 16);
    inmate_sw.set_access(1, 17);
    inmate_sw.set_trunk_all(5);
    sim::Port::connect(inmate1.nic(), inmate_sw.port(0),
                       util::microseconds(20));
    sim::Port::connect(inmate2.nic(), inmate_sw.port(1),
                       util::microseconds(20));
    sim::Port::connect(gateway->inmate_port(), inmate_sw.port(5),
                       util::microseconds(20));

    mgmt_sw.set_access(0, 2);
    mgmt_sw.set_access(1, 2);
    mgmt_sw.set_access(5, 2);
    sim::Port::connect(cs_host.nic(), mgmt_sw.port(0), util::microseconds(20));
    sim::Port::connect(sink_host.nic(), mgmt_sw.port(1),
                       util::microseconds(20));
    sim::Port::connect(gateway->mgmt_port(), mgmt_sw.port(5),
                       util::microseconds(20));

    ext_sw.set_access(0, 3);
    ext_sw.set_access(5, 3);
    sim::Port::connect(web.nic(), ext_sw.port(0), util::microseconds(100));
    sim::Port::connect(gateway->upstream_port(), ext_sw.port(5),
                       util::microseconds(100));

    cs_host.configure({kCsAddr, kMgmtNet, kGwMgmt, {}});
    sink_host.configure({kSinkAddr, kMgmtNet, kGwMgmt, {}});
    web.configure({kWebAddr, Ipv4Net(Ipv4Addr(), 0), Ipv4Addr(), {}});

    cs = std::make_unique<cs::ContainmentServer>(cs_host, kCsPort, kGwMgmt);

    // Catch-all sink: accepts anything on TCP 9999 / UDP 9999.
    sink_host.listen(9999, [this](std::shared_ptr<net::TcpConnection> conn) {
      ++sink_tcp_accepts;
      conn->on_data = [this](std::span<const std::uint8_t> d) {
        sink_tcp_data.append(reinterpret_cast<const char*>(d.data()),
                             d.size());
      };
    });
    auto udp_sink = sink_host.udp_open(9999);
    udp_sink->on_datagram = [this, udp_sink](util::Endpoint,
                                             std::vector<std::uint8_t>) {
      ++sink_udp_datagrams;
    };

    // Boot both inmates through DHCP.
    dhcp1 = std::make_unique<svc::DhcpClient>(inmate1, nullptr);
    dhcp2 = std::make_unique<svc::DhcpClient>(inmate2, nullptr);
    dhcp1->start();
    dhcp2->start();
    loop.run_for(util::seconds(5));
    ASSERT_TRUE(inmate1.configured());
    ASSERT_TRUE(inmate2.configured());
  }

  // Inmate enumerator for honeyfarm policies (outlives any policy that
  // keeps a PolicyEnv copy pointing at it).
  cs::InlinePolicyServices inmate_services;

  cs::PolicyEnv env_with_sink() {
    cs::PolicyEnv env;
    env.services["sink"] = {kSinkAddr, 9999};
    return env;
  }

  void bind(std::shared_ptr<cs::Policy> policy) {
    cs->bind_policy(16, 19, std::move(policy));
  }
};

TEST_F(FarmFixture, DhcpBindsInternalAndGlobalAddresses) {
  const auto* binding = subfarm->inmates().by_vlan(16);
  ASSERT_NE(binding, nullptr);
  EXPECT_TRUE(kInternalNet.contains(binding->internal_addr));
  EXPECT_TRUE(kExternalNet.contains(binding->global_addr));
  EXPECT_EQ(binding->internal_addr, inmate1.addr());
  EXPECT_EQ(inmate1.config().gateway, Ipv4Addr(10, 0, 0, 254));
  // Distinct inmates get distinct addresses.
  const auto* binding2 = subfarm->inmates().by_vlan(17);
  ASSERT_NE(binding2, nullptr);
  EXPECT_NE(binding->internal_addr, binding2->internal_addr);
  EXPECT_NE(binding->global_addr, binding2->global_addr);
}

TEST_F(FarmFixture, DefaultDenyDropsFlow) {
  bind(std::make_shared<cs::Policy>("DefaultDeny"));
  bool web_accepted = false;
  web.listen(80, [&](std::shared_ptr<net::TcpConnection>) {
    web_accepted = true;
  });
  bool reset = false;
  auto conn = inmate1.connect({kWebAddr, 80});
  conn->on_reset = [&] { reset = true; };
  loop.run_for(util::seconds(10));
  EXPECT_TRUE(reset);
  EXPECT_FALSE(web_accepted);  // Containment held: nothing escaped.
  ASSERT_FALSE(events.empty());
  bool saw_drop = false;
  for (const auto& event : events)
    if (event.kind == gw::FlowEvent::Kind::kVerdict &&
        event.verdict == shim::Verdict::kDrop)
      saw_drop = true;
  EXPECT_TRUE(saw_drop);
}

TEST_F(FarmFixture, ForwardVerdictSplicesAndNats) {
  bind(std::make_shared<cs::ForwardAllPolicy>());
  util::Endpoint seen_client;
  svc::HttpServer httpd(web, 80,
                        [&](const svc::HttpRequest&, util::Endpoint client) {
                          seen_client = client;
                          return svc::HttpResponse::make(200, "OK", "hello");
                        });
  std::optional<svc::HttpResponse> response;
  svc::HttpRequest request;
  request.path = "/";
  svc::HttpClient::fetch(inmate1, {kWebAddr, 80}, request,
                         [&](std::optional<svc::HttpResponse> rsp) {
                           response = std::move(rsp);
                         });
  loop.run_for(util::seconds(20));
  ASSERT_TRUE(response);
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "hello");
  // NAT: the web server must see the inmate's *global* address.
  const auto* binding = subfarm->inmates().by_vlan(16);
  EXPECT_EQ(seen_client.addr, binding->global_addr);
}

TEST_F(FarmFixture, ReflectVerdictHitsSinkTransparently) {
  bind(std::make_shared<cs::SinkAllPolicy>(env_with_sink()));
  bool web_accepted = false;
  web.listen(6667, [&](std::shared_ptr<net::TcpConnection>) {
    web_accepted = true;
  });
  bool connected = false;
  auto conn = inmate1.connect({kWebAddr, 6667});  // "IRC C&C" attempt.
  conn->on_connected = [&, conn] {
    connected = true;
    conn->send("NICK spambot\r\n");
  };
  loop.run_for(util::seconds(20));
  EXPECT_TRUE(connected);  // Inmate believes it reached the C&C.
  EXPECT_EQ(conn->remote().addr, kWebAddr);  // Illusion preserved.
  EXPECT_FALSE(web_accepted);                // Nothing escaped.
  EXPECT_EQ(sink_tcp_accepts, 1);
  EXPECT_EQ(sink_tcp_data, "NICK spambot\r\n");
}

TEST_F(FarmFixture, RewriteVerdictFigure5) {
  // The Figure 5 scenario: HTTP REWRITE proxy changes "GET /bot.exe" to
  // "GET /cleanup.exe" on the way out and turns the answer into a 404.
  class Figure5Policy : public cs::Policy {
   public:
    Figure5Policy() : Policy("Fig5Rewrite") {}
    cs::Decision decide(const cs::FlowInfo&) override {
      return cs::Decision::rewrite("C&C filtering");
    }
    std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
        const cs::FlowInfo&) override {
      auto request_filter = [](svc::HttpRequest request)
          -> std::optional<svc::HttpRequest> {
        if (request.path == "/bot.exe") request.path = "/cleanup.exe";
        return request;
      };
      auto response_filter = [](svc::HttpResponse response) {
        if (response.status == 200)
          return svc::HttpResponse::make(404, "NOT FOUND", "");
        return response;
      };
      return std::make_unique<cs::HttpFilterHandler>(request_filter,
                                                     response_filter);
    }
  };
  bind(std::make_shared<Figure5Policy>());

  std::string path_seen_at_server;
  svc::HttpServer httpd(web, 80,
                        [&](const svc::HttpRequest& request, util::Endpoint) {
                          path_seen_at_server = request.path;
                          return svc::HttpResponse::make(200, "OK", "binary");
                        });
  std::optional<svc::HttpResponse> response;
  svc::HttpRequest request;
  request.path = "/bot.exe";
  svc::HttpClient::fetch(inmate1, {kWebAddr, 80}, request,
                         [&](std::optional<svc::HttpResponse> rsp) {
                           response = std::move(rsp);
                         });
  loop.run_for(util::seconds(30));
  EXPECT_EQ(path_seen_at_server, "/cleanup.exe");  // Outbound rewritten.
  ASSERT_TRUE(response);
  EXPECT_EQ(response->status, 404);  // Inbound rewritten.
}

TEST_F(FarmFixture, RedirectVerdictReachesOtherInmate) {
  // Worm honeyfarm containment: inmate1's "scan" of an external host is
  // redirected to inmate2.
  inmate_services.list_inmates_fn = [this] {
    cs::PolicyServices::InmateList inmates;
    for (const auto& [vlan, binding] : subfarm->inmates().bindings())
      inmates.emplace_back(vlan, binding.internal_addr);
    return inmates;
  };
  cs::PolicyEnv env(inmate_services);
  bind(std::make_shared<cs::WormFarmPolicy>(env));

  std::string exploit_at_victim;
  inmate2.listen(445, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      exploit_at_victim.append(reinterpret_cast<const char*>(d.data()),
                               d.size());
    };
  });
  auto conn = inmate1.connect({Ipv4Addr(55, 66, 77, 88), 445});
  conn->on_connected = [conn] { conn->send("EXPLOIT-BYTES"); };
  loop.run_for(util::seconds(20));
  EXPECT_EQ(exploit_at_victim, "EXPLOIT-BYTES");
  EXPECT_EQ(conn->remote().addr, Ipv4Addr(55, 66, 77, 88));
}

TEST_F(FarmFixture, LimitVerdictThrottlesThroughput) {
  class LimitPolicy : public cs::Policy {
   public:
    LimitPolicy() : Policy("Limit4k") {}
    cs::Decision decide(const cs::FlowInfo&) override {
      return cs::Decision::limit(4096);
    }
  };
  bind(std::make_shared<LimitPolicy>());

  std::string received;
  util::TimePoint done{};
  web.listen(80, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
      done = loop.now();
    };
  });
  const std::string blob(60'000, 'L');
  const auto start = loop.now();
  auto conn = inmate1.connect({kWebAddr, 80});
  conn->on_connected = [&, conn] { conn->send(blob); };
  loop.run_for(util::minutes(5));
  EXPECT_EQ(received.size(), blob.size());  // Delivered, eventually.
  // 60 kB at 4 kB/s (burst 8 kB) needs > 10 simulated seconds; an
  // unthrottled transfer completes in well under one.
  EXPECT_GT((done - start).seconds_f(), 10.0);
}

TEST_F(FarmFixture, CustomLimitRateSurvivesTypedShimRoundTrip) {
  // Regression for the typed verdict-parameter block: a non-default
  // LIMIT rate must reach the gateway via the shim's typed field (there
  // is no textual "rate=" channel any more) and drive the token bucket.
  class SlowLimitPolicy : public cs::Policy {
   public:
    SlowLimitPolicy() : Policy("Limit2k") {}
    cs::Decision decide(const cs::FlowInfo&) override {
      return cs::Decision::limit(2048);
    }
  };
  bind(std::make_shared<SlowLimitPolicy>());

  std::string received;
  util::TimePoint done{};
  web.listen(80, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
      done = loop.now();
    };
  });
  const std::string blob(30'000, 'L');
  const auto start = loop.now();
  auto conn = inmate1.connect({kWebAddr, 80});
  conn->on_connected = [&, conn] { conn->send(blob); };
  loop.run_for(util::minutes(5));
  EXPECT_EQ(received.size(), blob.size());
  // 30 kB at 2 kB/s (burst 4 kB) needs > 12 simulated seconds; at the
  // 8 kB/s default fallback rate it would finish in under 4.
  EXPECT_GT((done - start).seconds_f(), 10.0);
  // The flow event stream carries the typed parameter, not an encoded
  // annotation.
  bool saw_limit = false;
  for (const auto& event : events) {
    if (event.kind == gw::FlowEvent::Kind::kVerdict &&
        event.verdict == shim::Verdict::kLimit) {
      saw_limit = true;
      ASSERT_TRUE(event.limit_bytes_per_sec.has_value());
      EXPECT_EQ(*event.limit_bytes_per_sec, 2048);
    }
  }
  EXPECT_TRUE(saw_limit);
}

TEST_F(FarmFixture, UdpForwardAndReflect) {
  bind(std::make_shared<cs::ForwardAllPolicy>());
  // External UDP echo.
  auto echo = web.udp_open(53);
  echo->on_datagram = [echo](util::Endpoint from,
                             std::vector<std::uint8_t> data) {
    echo->send_to(from, data);
  };
  auto client = inmate1.udp_open(0);
  std::string answer;
  client->on_datagram = [&](util::Endpoint from,
                            std::vector<std::uint8_t> data) {
    answer.assign(data.begin(), data.end());
    EXPECT_EQ(from.addr, kWebAddr);  // NAT illusion on the return path.
  };
  client->send_to({kWebAddr, 53}, util::to_bytes("query"));
  loop.run_for(util::seconds(10));
  EXPECT_EQ(answer, "query");
}

TEST_F(FarmFixture, UdpReflectLandsInSink) {
  bind(std::make_shared<cs::SinkAllPolicy>(env_with_sink()));
  auto client = inmate1.udp_open(0);
  client->send_to({Ipv4Addr(8, 8, 8, 8), 53}, util::to_bytes("exfil"));
  client->send_to({Ipv4Addr(8, 8, 4, 4), 53}, util::to_bytes("exfil"));
  loop.run_for(util::seconds(10));
  EXPECT_EQ(sink_udp_datagrams, 2);
}

TEST_F(FarmFixture, UdpDropByDefaultDeny) {
  bind(std::make_shared<cs::Policy>("DefaultDeny"));
  bool web_got_datagram = false;
  auto server = web.udp_open(53);
  server->on_datagram = [&](util::Endpoint, std::vector<std::uint8_t>) {
    web_got_datagram = true;
  };
  auto client = inmate1.udp_open(0);
  client->send_to({kWebAddr, 53}, util::to_bytes("probe"));
  loop.run_for(util::seconds(10));
  EXPECT_FALSE(web_got_datagram);
}

TEST_F(FarmFixture, SafetyFilterCapsConnectionRate) {
  gw::SubfarmConfig tight = subfarm->config();
  // Rebuild with a tighter filter by making a second subfarm on other
  // VLANs is heavy; instead verify the counter via many rapid flows
  // against the default threshold using a tiny custom threshold subfarm.
  // Simpler: hammer > max_conns_per_dest flows at one destination.
  bind(std::make_shared<cs::ForwardAllPolicy>());
  web.listen(80, [](std::shared_ptr<net::TcpConnection>) {});
  for (int i = 0; i < 600; ++i) {
    auto conn = inmate1.connect({kWebAddr, 80});
    conn->on_connected = [conn] { conn->close(); };
  }
  loop.run_for(util::seconds(30));
  EXPECT_GT(subfarm->safety().rejected(), 0u);
}

TEST_F(FarmFixture, InboundDropModeBlocksOutsideInitiated) {
  bind(std::make_shared<cs::ForwardAllPolicy>());
  bool inmate_reached = false;
  inmate1.listen(8080, [&](std::shared_ptr<net::TcpConnection>) {
    inmate_reached = true;
  });
  const auto* binding = subfarm->inmates().by_vlan(16);
  auto conn = web.connect({binding->global_addr, 8080});
  loop.run_for(util::seconds(10));
  EXPECT_FALSE(inmate_reached);  // Home-NAT emulation drops it.
}

TEST_F(FarmFixture, PcapTracesRecorded) {
  bind(std::make_shared<cs::ForwardAllPolicy>());
  web.listen(80, [](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data = [conn](std::span<const std::uint8_t>) {
      conn->send("ok");
    };
  });
  auto conn = inmate1.connect({kWebAddr, 80});
  conn->on_connected = [conn] { conn->send("x"); };
  loop.run_for(util::seconds(10));
  EXPECT_GT(subfarm->trace().packet_count(), 5u);
  EXPECT_GT(gateway->upstream_trace().packet_count(), 5u);
}

// The upstream trace archive must capture every frame the gateway emits
// upstream exactly once — under both the decoded path and the zero-copy
// fast path. The oracle is the upstream tap on transmit_upstream, the
// single choke point all upstream emissions funnel through.
struct UpstreamArchiveFixture : FarmFixture,
                                ::testing::WithParamInterface<bool> {};

TEST_P(UpstreamArchiveFixture, EveryUpstreamEmissionArchivedExactlyOnce) {
  gateway->set_fast_path(GetParam());
  std::vector<std::vector<std::uint8_t>> emitted;
  gateway->set_upstream_tap(
      [&](util::TimePoint, const std::vector<std::uint8_t>& bytes) {
        emitted.push_back(bytes);
      });
  bind(std::make_shared<cs::ForwardAllPolicy>());
  web.listen(80, [](std::shared_ptr<net::TcpConnection> conn) {
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_data = [weak](std::span<const std::uint8_t>) {
      if (auto c = weak.lock()) c->send("ok");
    };
  });
  auto conn = inmate1.connect({kWebAddr, 80});
  conn->on_connected = [conn] { conn->send("x"); };
  conn->on_data = [conn](std::span<const std::uint8_t>) { conn->close(); };
  loop.run_for(util::seconds(20));

  ASSERT_GT(emitted.size(), 3u);
  std::map<std::vector<std::uint8_t>, int> emitted_count;
  for (const auto& frame : emitted) ++emitted_count[frame];
  std::map<std::vector<std::uint8_t>, int> archived_count;
  for (const auto& record : gateway->upstream_trace().archive().records())
    ++archived_count[record.frame];
  // The archive also holds upstream *ingress* (web replies, captured by
  // on_upstream_frame), so compare only the emitted frames: each must
  // appear exactly as many times as it was transmitted — no drops, no
  // duplicates.
  for (const auto& [frame, count] : emitted_count)
    EXPECT_EQ(archived_count[frame], count)
        << "frame of " << frame.size() << " bytes archived "
        << archived_count[frame] << "x, emitted " << count << "x";
}

INSTANTIATE_TEST_SUITE_P(Paths, UpstreamArchiveFixture,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "FastPath" : "DecodedPath";
                         });

// Inbound-forward mode needs its own fixture flavour.
struct InboundFarmFixture : FarmFixture {
  void SetUp() override {
    FarmFixture::SetUp();
    // Rebuild is unnecessary: flip the config through a fresh subfarm is
    // complex, so this fixture is configured via the dedicated test.
  }
};

TEST_F(FarmFixture, InboundForwardModeReachesInmate) {
  // Create a second subfarm in forward mode on VLANs 18-19 and move an
  // inmate-like host onto it.
  gw::SubfarmConfig sfc;
  sfc.name = "StormFarm";
  sfc.vlan_first = 18;
  sfc.vlan_last = 19;
  sfc.internal_net = Ipv4Net(Ipv4Addr(10, 1, 0, 0), 24);
  sfc.external_net = Ipv4Net(Ipv4Addr(198, 19, 0, 0), 24);
  sfc.containment_server = {kCsAddr, kCsPort};
  sfc.inbound_mode = gw::InboundMode::kForward;
  auto& storm_subfarm = gateway->add_subfarm(sfc);

  net::HostStack proxy_bot(loop, "proxybot", util::MacAddr::local(0x203), 23);
  inmate_sw.set_access(2, 18);
  sim::Port::connect(proxy_bot.nic(), inmate_sw.port(2),
                     util::microseconds(20));
  svc::DhcpClient dhcp(proxy_bot, nullptr);
  dhcp.start();
  loop.run_for(util::seconds(5));
  ASSERT_TRUE(proxy_bot.configured());

  std::string relayed;
  proxy_bot.listen(8080, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data = [&, conn](std::span<const std::uint8_t> d) {
      relayed.append(reinterpret_cast<const char*>(d.data()), d.size());
      conn->send("ACK-FROM-BOT");
    };
  });

  const auto* binding = storm_subfarm.inmates().by_vlan(18);
  ASSERT_NE(binding, nullptr);
  std::string reply;
  auto conn = web.connect({binding->global_addr, 8080});
  conn->on_connected = [conn] { conn->send("C&C-JOB"); };
  conn->on_data = [&](std::span<const std::uint8_t> d) {
    reply.append(reinterpret_cast<const char*>(d.data()), d.size());
  };
  loop.run_for(util::seconds(10));
  EXPECT_EQ(relayed, "C&C-JOB");
  EXPECT_EQ(reply, "ACK-FROM-BOT");
}

// Verdict sweep: every endpoint verdict produces a report event with the
// right verdict and policy name.
class VerdictEventSweep
    : public FarmFixture,
      public ::testing::WithParamInterface<shim::Verdict> {};

TEST_P(VerdictEventSweep, EventCarriesVerdict) {
  const shim::Verdict verdict = GetParam();
  class OnePolicy : public cs::Policy {
   public:
    OnePolicy(shim::Verdict v, util::Endpoint sink)
        : Policy("OnePolicy"), verdict_(v), sink_(sink) {}
    cs::Decision decide(const cs::FlowInfo&) override {
      switch (verdict_) {
        case shim::Verdict::kForward: return cs::Decision::forward();
        case shim::Verdict::kLimit: return cs::Decision::limit(100000);
        case shim::Verdict::kDrop: return cs::Decision::drop();
        case shim::Verdict::kRedirect:
          return cs::Decision::redirect(sink_);
        case shim::Verdict::kReflect: return cs::Decision::reflect(sink_);
        case shim::Verdict::kRewrite: return cs::Decision::rewrite();
      }
      return cs::Decision::drop();
    }
    std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
        const cs::FlowInfo&) override {
      return std::make_unique<cs::PassthroughHandler>();
    }

   private:
    shim::Verdict verdict_;
    util::Endpoint sink_;
  };
  bind(std::make_shared<OnePolicy>(verdict,
                                   util::Endpoint{kSinkAddr, 9999}));
  web.listen(80, [](std::shared_ptr<net::TcpConnection>) {});
  auto conn = inmate1.connect({kWebAddr, 80});
  loop.run_for(util::seconds(15));
  bool seen = false;
  for (const auto& event : events) {
    if (event.kind == gw::FlowEvent::Kind::kVerdict &&
        event.verdict == verdict && event.policy_name == "OnePolicy")
      seen = true;
  }
  EXPECT_TRUE(seen) << shim::verdict_name(verdict);
}

INSTANTIATE_TEST_SUITE_P(AllVerdicts, VerdictEventSweep,
                         ::testing::Values(shim::Verdict::kForward,
                                           shim::Verdict::kLimit,
                                           shim::Verdict::kDrop,
                                           shim::Verdict::kRedirect,
                                           shim::Verdict::kReflect,
                                           shim::Verdict::kRewrite));

}  // namespace
}  // namespace gq
