// Trace subsystem tests: rotating archiver semantics (rotation,
// eviction, stable locations), pcap caplen hardening, flow indexing,
// archive save/load round trips, tap metrics — and the golden-trace
// regression: replaying an archived inmate-side capture through a
// freshly built farm must reproduce the verdict event sequence and the
// upstream egress bit-identically (trace/replay.h's contract), for
// more than one seed.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "packet/frame.h"
#include "packet/pcap.h"
#include "trace/archive.h"
#include "trace/flow_index.h"
#include "trace/replay.h"
#include "trace/tap.h"

namespace gq {
namespace {

using util::Ipv4Addr;

std::vector<std::uint8_t> tcp_frame(Ipv4Addr src, Ipv4Addr dst,
                                    std::uint16_t sport, std::uint16_t dport,
                                    std::size_t payload = 16,
                                    std::optional<std::uint16_t> vlan = {}) {
  pkt::DecodedFrame frame;
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  frame.eth.vlan = vlan;
  frame.ip = pkt::Ipv4Packet{};
  frame.ip->src = src;
  frame.ip->dst = dst;
  frame.tcp = pkt::TcpSegment{};
  frame.tcp->src_port = sport;
  frame.tcp->dst_port = dport;
  frame.tcp->payload.assign(payload, 0x61);
  return frame.encode();
}

// --- PcapWriter hardening (satellite: caplen clamp) -----------------------

TEST(Pcap, RecordClampsCaplenAndKeepsOrigLen) {
  pkt::PcapWriter writer;
  std::vector<std::uint8_t> oversize(pkt::kPcapSnapLen + 1000, 0xAB);
  writer.record(util::TimePoint{42}, oversize);

  const auto parsed = pkt::parse_pcap(writer.contents());
  ASSERT_EQ(parsed.size(), 1u);
  // Captured bytes clamp to the snap length; orig_len remembers the
  // frame's true wire size so consumers can detect the truncation.
  EXPECT_EQ(parsed[0].frame.size(), pkt::kPcapSnapLen);
  EXPECT_EQ(parsed[0].orig_len, oversize.size());
  EXPECT_TRUE(std::equal(parsed[0].frame.begin(), parsed[0].frame.end(),
                         oversize.begin()));
}

TEST(Pcap, UntruncatedRecordRoundTrips) {
  pkt::PcapWriter writer;
  const auto frame = tcp_frame(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                               1234, 80);
  writer.record(util::TimePoint{7}, frame);
  const auto parsed = pkt::parse_pcap(writer.contents());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].frame, frame);
  EXPECT_EQ(parsed[0].orig_len, frame.size());
  EXPECT_EQ(parsed[0].time.usec, 7);
}

TEST(Pcap, ParseRejectsOversizeCaplen) {
  // Hand-craft a record header claiming caplen > snaplen: parse must
  // stop rather than attempt a giant allocation.
  pkt::PcapWriter writer;
  writer.record(util::TimePoint{1}, std::vector<std::uint8_t>(10, 0x01));
  std::vector<std::uint8_t> bytes(writer.contents().begin(),
                                  writer.contents().end());
  // incl_len lives 8 bytes into the record header.
  const std::size_t incl_off = pkt::kPcapFileHeaderSize + 8;
  const std::uint32_t bogus = pkt::kPcapSnapLen + 1;
  std::memcpy(bytes.data() + incl_off, &bogus, 4);
  EXPECT_TRUE(pkt::parse_pcap(bytes).empty());
}

TEST(Pcap, ParseRejectsCaplenAboveOrigLen) {
  pkt::PcapWriter writer;
  writer.record(util::TimePoint{1}, std::vector<std::uint8_t>(10, 0x01));
  std::vector<std::uint8_t> bytes(writer.contents().begin(),
                                  writer.contents().end());
  const std::size_t orig_off = pkt::kPcapFileHeaderSize + 12;
  const std::uint32_t bogus = 4;  // orig_len < incl_len: inconsistent.
  std::memcpy(bytes.data() + orig_off, &bogus, 4);
  EXPECT_TRUE(pkt::parse_pcap(bytes).empty());
}

TEST(Pcap, ParseReturnsValidPrefixOfTruncatedBuffer) {
  pkt::PcapWriter writer;
  for (int i = 0; i < 3; ++i)
    writer.record(util::TimePoint{i},
                  std::vector<std::uint8_t>(20 + i, 0x55));
  std::vector<std::uint8_t> bytes(writer.contents().begin(),
                                  writer.contents().end());
  // Cut mid-way through the third record: the first two parse.
  bytes.resize(bytes.size() - 10);
  const auto parsed = pkt::parse_pcap(bytes);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].frame.size(), 20u);
  EXPECT_EQ(parsed[1].frame.size(), 21u);
}

// --- TraceArchiver --------------------------------------------------------

TEST(TraceArchiver, RotatesAtSegmentBudgetAndEvictsOldest) {
  trace::ArchiveConfig config;
  config.segment_bytes = 512;
  config.max_segments = 3;
  trace::TraceArchiver archive(config);

  const auto frame = std::vector<std::uint8_t>(100, 0x42);
  for (int i = 0; i < 64; ++i) archive.record(util::TimePoint{i}, frame);

  EXPECT_EQ(archive.segment_count(), 3u);
  EXPECT_GT(archive.evicted_segments(), 0u);
  EXPECT_EQ(archive.total_packets(), 64u);
  EXPECT_EQ(archive.retained_packets() + archive.evicted_packets(), 64u);
  // Memory stays within budget: each segment holds the header plus at
  // most one record past the rotation threshold.
  for (const auto& segment : archive.segments())
    EXPECT_LE(segment.pcap.size_bytes(),
              config.segment_bytes + 16 + frame.size());
  // Retained seqs are contiguous and the active tail is the newest.
  const auto& segments = archive.segments();
  for (std::size_t i = 1; i < segments.size(); ++i)
    EXPECT_EQ(segments[i].seq, segments[i - 1].seq + 1);
}

TEST(TraceArchiver, LocationsResolveUntilEvicted) {
  trace::ArchiveConfig config;
  config.segment_bytes = 256;
  config.max_segments = 2;
  trace::TraceArchiver archive(config);

  std::vector<trace::Location> locations;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 32; ++i) {
    frames.push_back(std::vector<std::uint8_t>(50, std::uint8_t(i)));
    locations.push_back(archive.record(util::TimePoint{i}, frames.back()));
  }
  std::size_t resolved = 0;
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const auto record = archive.record_at(locations[i]);
    if (!record) continue;  // Rotated out.
    ++resolved;
    EXPECT_EQ(record->frame, frames[i]);
    EXPECT_EQ(record->time.usec, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(resolved, archive.retained_packets());
  EXPECT_GT(resolved, 0u);
  // A bogus offset inside a live segment does not resolve either.
  const auto live = locations.back();
  EXPECT_FALSE(archive.record_at({live.segment, live.offset + 1}));
}

TEST(TraceArchiver, ContentsIsOneValidPcap) {
  trace::ArchiveConfig config;
  config.segment_bytes = 300;
  config.max_segments = 4;
  trace::TraceArchiver archive(config);
  for (int i = 0; i < 20; ++i)
    archive.record(util::TimePoint{i}, std::vector<std::uint8_t>(40, 0x99));
  const auto parsed = pkt::parse_pcap(archive.contents());
  EXPECT_EQ(parsed.size(), archive.retained_packets());
}

// --- FlowIndex ------------------------------------------------------------

TEST(FlowIndex, CanonicalizesBidirectionally) {
  trace::FlowIndex index;
  const pkt::FlowKey key{pkt::FlowProto::kTcp,
                         {Ipv4Addr(10, 0, 0, 5), 1234},
                         {Ipv4Addr(1, 2, 3, 4), 80}};
  index.touch(key, 7, util::TimePoint{10}, 100, {0, 24});
  index.touch(key.reversed(), 7, util::TimePoint{20}, 60, {0, 140});
  index.touch(key, 7, util::TimePoint{30}, 100, {0, 216});

  ASSERT_EQ(index.flow_count(), 1u);
  const auto* flow = index.find(key.reversed(), 7);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->key, key);  // First-seen direction is canonical.
  EXPECT_EQ(flow->packets, 3u);
  EXPECT_EQ(flow->bytes, 260u);
  EXPECT_EQ(flow->first_time.usec, 10);
  EXPECT_EQ(flow->last_time.usec, 30);
  ASSERT_EQ(flow->locations.size(), 3u);

  // Same 5-tuple on a different VLAN is a different flow.
  index.touch(key, 8, util::TimePoint{40}, 100, {0, 316});
  EXPECT_EQ(index.flow_count(), 2u);
}

TEST(FlowIndex, AnnotateAttachesVerdict) {
  trace::FlowIndex index;
  const pkt::FlowKey key{pkt::FlowProto::kUdp,
                         {Ipv4Addr(10, 0, 0, 5), 5353},
                         {Ipv4Addr(8, 8, 8, 8), 53}};
  EXPECT_FALSE(index.annotate(key, 3, shim::Verdict::kDrop, "p"));
  index.touch(key, 3, util::TimePoint{1}, 80, {0, 24});
  EXPECT_TRUE(
      index.annotate(key.reversed(), 3, shim::Verdict::kForward, "dns-ok"));
  const auto* flow = index.find(key, 3);
  ASSERT_NE(flow, nullptr);
  EXPECT_TRUE(flow->has_verdict);
  EXPECT_EQ(flow->verdict, shim::Verdict::kForward);
  EXPECT_EQ(flow->policy_name, "dns-ok");
}

TEST(FlowIndex, RestoreRebuildsBidirectionalFindAfterSaveLoadRoundTrip) {
  // Serialize a populated index through the flows.txt line codec, then
  // restore into a fresh index and check bidirectional find still
  // resolves — including a kTable-annotated flow from the compiled
  // policy-table path and tenant/job attribution.
  trace::FlowIndex index;
  const pkt::FlowKey shim_key{pkt::FlowProto::kTcp,
                              {Ipv4Addr(10, 9, 0, 4), 1234},
                              {Ipv4Addr(203, 0, 113, 9), 80}};
  const pkt::FlowKey table_key{pkt::FlowProto::kUdp,
                               {Ipv4Addr(10, 9, 0, 5), 5353},
                               {Ipv4Addr(8, 8, 8, 8), 53}};
  index.touch(shim_key, 12, util::TimePoint{100}, 80, {0, 24});
  index.touch(shim_key.reversed(), 12, util::TimePoint{150}, 60, {0, 120});
  index.touch(table_key, 12, util::TimePoint{200}, 90, {1, 24});
  ASSERT_TRUE(index.annotate(shim_key, 12, shim::Verdict::kRewrite, "botdl",
                             shim::VerdictSource::kShim));
  ASSERT_TRUE(index.annotate(table_key.reversed(), 12, shim::Verdict::kDrop,
                             "dns-table", shim::VerdictSource::kTable));
  for (auto& flow : const_cast<std::deque<trace::FlowRecord>&>(
           index.flows())) {
    flow.tenant = "acme";
    flow.job = 42;
  }

  trace::FlowIndex restored;
  for (const auto& flow : index.flows()) {
    const auto parsed =
        trace::parse_flow_record_line(trace::flow_record_line(flow));
    ASSERT_TRUE(parsed);
    ASSERT_EQ(*parsed, flow);
    restored.restore(*parsed);
  }
  ASSERT_EQ(restored.flow_count(), index.flow_count());

  // find must resolve both directions of both flows after restore.
  for (const auto& key : {shim_key, table_key}) {
    const auto* forward = restored.find(key, 12);
    const auto* reverse = restored.find(key.reversed(), 12);
    ASSERT_NE(forward, nullptr) << key.str();
    EXPECT_EQ(forward, reverse) << key.str();
    EXPECT_EQ(forward->key, key) << key.str();
    EXPECT_EQ(forward->tenant, "acme");
    EXPECT_EQ(forward->job, 42u);
  }
  const auto* table_flow = restored.find(table_key.reversed(), 12);
  ASSERT_NE(table_flow, nullptr);
  EXPECT_TRUE(table_flow->has_verdict);
  EXPECT_EQ(table_flow->verdict, shim::Verdict::kDrop);
  EXPECT_EQ(table_flow->verdict_source, shim::VerdictSource::kTable);
  EXPECT_FALSE(table_flow->verdict_cached);
  EXPECT_EQ(table_flow->policy_name, "dns-table");
  // Wrong VLAN still misses.
  EXPECT_EQ(restored.find(table_key, 13), nullptr);
}

TEST(FlowIndex, FlowLineParserRejectsMalformedFields) {
  const trace::FlowRecord record;  // Defaults serialize cleanly.
  const auto line = trace::flow_record_line(record);
  ASSERT_TRUE(trace::parse_flow_record_line(line));
  // Non-numeric and out-of-range fields reject instead of throwing
  // (the old loader crashed on these via std::stoul).
  EXPECT_FALSE(trace::parse_flow_record_line(""));
  EXPECT_FALSE(trace::parse_flow_record_line("flow"));
  EXPECT_FALSE(trace::parse_flow_record_line(
      "flow\ttcp\t10.0.0.1\tnotaport\t10.0.0.2\t80\t0\t1\t1\t0\t0\t-\t-"));
  EXPECT_FALSE(trace::parse_flow_record_line(
      "flow\ttcp\t10.0.0.1\t99999\t10.0.0.2\t80\t0\t1\t1\t0\t0\t-\t-"));
  EXPECT_FALSE(trace::parse_flow_record_line(
      "flow\ttcp\tnot.an.ip\t1\t10.0.0.2\t80\t0\t1\t1\t0\t0\t-\t-"));
  EXPECT_FALSE(trace::parse_flow_record_line(
      "flow\ticmp\t10.0.0.1\t1\t10.0.0.2\t80\t0\t1\t1\t0\t0\t-\t-"));
  EXPECT_FALSE(trace::parse_flow_record_line(
      "flow\ttcp\t10.0.0.1\t1\t10.0.0.2\t80\t0\t"
      "99999999999999999999999999\t1\t0\t0\t-\t-"));
}

// --- TraceTap: metrics, extraction, save/load -----------------------------

TEST(TraceTap, MetricsTrackRotation) {
  obs::Telemetry telemetry;
  trace::ArchiveConfig config;
  config.segment_bytes = 512;
  config.max_segments = 2;
  trace::TraceTap tap("t", config, &telemetry);

  const auto frame = tcp_frame(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                               1000, 80, 64);
  for (int i = 0; i < 40; ++i) tap.record(util::TimePoint{i}, frame);

  const auto& metrics = telemetry.metrics();
  ASSERT_NE(metrics.find_gauge("trace.t.segments"), nullptr);
  EXPECT_EQ(metrics.find_gauge("trace.t.segments")->value(),
            static_cast<std::int64_t>(tap.archive().segment_count()));
  EXPECT_EQ(metrics.find_gauge("trace.t.bytes")->value(),
            static_cast<std::int64_t>(tap.archive().retained_bytes()));
  EXPECT_EQ(metrics.find_counter("trace.t.evicted")->value(),
            tap.archive().evicted_segments());
  EXPECT_EQ(metrics.find_counter("trace.t.packets")->value(), 40u);
  EXPECT_GT(tap.archive().evicted_segments(), 0u);
}

TEST(TraceTap, ExtractFlowPullsOnlyThatFlow) {
  trace::TraceTap tap("t", {}, nullptr);
  const auto a = Ipv4Addr(10, 0, 0, 1);
  const auto b = Ipv4Addr(10, 0, 0, 2);
  const auto c = Ipv4Addr(10, 0, 0, 3);
  for (int i = 0; i < 6; ++i) {
    tap.record(util::TimePoint{i * 10}, tcp_frame(a, b, 1000, 80, 8));
    tap.record(util::TimePoint{i * 10 + 1}, tcp_frame(a, c, 1001, 443, 8));
  }
  const auto* flow = tap.index().find(
      {pkt::FlowProto::kTcp, {a, 1000}, {b, 80}}, 0);
  ASSERT_NE(flow, nullptr);
  const auto records = tap.extract_flow(*flow);
  ASSERT_EQ(records.size(), 6u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].time.usec, static_cast<std::int64_t>(i * 10));
    const auto decoded = pkt::decode_frame(records[i].frame);
    ASSERT_TRUE(decoded && decoded->ip);
    EXPECT_EQ(decoded->ip->dst, b);
  }
}

TEST(TraceTap, SaveLoadRoundTrip) {
  const std::string dir = "trace_test_roundtrip";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  trace::ArchiveConfig config;
  config.segment_bytes = 1024;
  config.max_segments = 3;
  trace::TraceTap tap("rt", config, nullptr);
  tap.set_context("umbrella", 9);
  const auto a = Ipv4Addr(10, 5, 0, 9);
  const auto b = Ipv4Addr(93, 184, 216, 34);
  for (int i = 0; i < 48; ++i)
    tap.record(util::TimePoint{i * 100},
               tcp_frame(a, b, 2000, 8001, 32, 17));
  tap.annotate({pkt::FlowProto::kTcp, {a, 2000}, {b, 8001}}, 17,
               shim::Verdict::kLimit, "limiter");
  ASSERT_TRUE(tap.save(dir));

  auto loaded = trace::load_trace(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name(), "rt");
  EXPECT_EQ(loaded->contents(), tap.contents());
  EXPECT_EQ(loaded->archive().total_packets(), 48u);
  EXPECT_EQ(loaded->archive().evicted_segments(),
            tap.archive().evicted_segments());
  EXPECT_EQ(loaded->archive().evicted_packets(),
            tap.archive().evicted_packets());
  ASSERT_EQ(loaded->index().flow_count(), tap.index().flow_count());
  const auto* flow = loaded->index().find(
      {pkt::FlowProto::kTcp, {a, 2000}, {b, 8001}}, 17);
  ASSERT_NE(flow, nullptr);
  EXPECT_TRUE(flow->has_verdict);
  EXPECT_EQ(flow->verdict, shim::Verdict::kLimit);
  EXPECT_EQ(flow->policy_name, "limiter");
  EXPECT_EQ(flow->packets, 48u);
  // Tenant/job attribution survives the manifest and flow round trip.
  EXPECT_EQ(loaded->tenant(), "umbrella");
  EXPECT_EQ(loaded->job(), 9u);
  EXPECT_EQ(flow->tenant, "umbrella");
  EXPECT_EQ(flow->job, 9u);
  // Extraction works identically on the loaded archive.
  EXPECT_EQ(loaded->extract_flow(*flow).size(),
            tap.extract_flow(*flow).size());

  std::filesystem::remove_all(dir, ec);
}

TEST(TraceTap, LoadRejectsMissingArchive) {
  EXPECT_FALSE(trace::load_trace("no_such_trace_dir").has_value());
}

// --- Golden-trace replay regression ---------------------------------------

// Four-verdict cycling policy, keyed by destination port (a scripted
// stand-in for a real containment config; same shape as the soak's).
class ReplayPolicy : public cs::Policy {
 public:
  explicit ReplayPolicy(util::Endpoint sink)
      : cs::Policy("Replay"), sink_(sink) {}

  cs::Decision decide(const cs::FlowInfo& info) override {
    switch (info.dst().port) {
      case 8001: return cs::Decision::forward();
      case 8002: return cs::Decision::limit(4096);
      case 8003: return cs::Decision::drop("denied");
      case 8004: return cs::Decision::redirect(sink_, "redirected");
      default:   return cs::Decision::drop("unexpected port");
    }
  }

 private:
  util::Endpoint sink_;
};

constexpr std::uint16_t kReplayPorts[] = {8001, 8002, 8003, 8004};
const Ipv4Addr kEchoAddr(93, 184, 216, 34);
constexpr auto kRunLength = util::seconds(150);

struct RunLog {
  std::string events;                      // Canonical event stream.
  std::vector<std::uint8_t> upstream;      // Upstream tap capture.
  std::vector<pkt::PcapRecord> inmate_rx;  // Raw inmate-port ingress.
  std::uint64_t verdicts = 0;
};

// Identical farm assembly for recording and replay; the only difference
// is inmates (created last, so omitting them leaves every other
// construction-time RNG draw in place — see trace/replay.h).
struct ReplayRig {
  explicit ReplayRig(std::uint64_t seed) {
    core::FarmOptions options;
    options.seed = seed;
    // The inmate_rx capture must survive the whole run un-evicted: give
    // every tap plenty of segment budget.
    options.trace_archive.segment_bytes = 1 << 20;
    options.trace_archive.max_segments = 16;
    farm = std::make_unique<core::Farm>(options);

    auto& echo = farm->add_external_host("echo", kEchoAddr);
    for (const auto port : kReplayPorts)
      echo.listen(port, [](std::shared_ptr<net::TcpConnection> conn) {
        std::weak_ptr<net::TcpConnection> weak = conn;
        conn->on_data = [weak](std::span<const std::uint8_t> data) {
          if (auto c = weak.lock()) c->send(data);
        };
      });

    sub = &farm->add_subfarm("Replay");
    sub->add_catchall_sink();
    const auto sink = sub->policy_env().services.at("sink");
    sub->bind_policy(sub->router().config().vlan_first,
                     sub->router().config().vlan_last,
                     std::make_shared<ReplayPolicy>(sink));
  }

  std::unique_ptr<core::Farm> farm;
  core::Subfarm* sub = nullptr;
};

RunLog record_run(std::uint64_t seed) {
  ReplayRig rig(seed);
  trace::EventRecorder recorder(rig.farm->telemetry().bus());

  std::vector<inm::Inmate*> inmates;
  for (int i = 0; i < 2; ++i)
    inmates.push_back(&rig.sub->create_inmate(inm::HostingKind::kVm));

  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  auto launch = [&](int index) {
    auto& host = inmates[index % inmates.size()]->host();
    if (!host.configured()) return;
    auto conn = host.connect({kEchoAddr, kReplayPorts[index % 4]});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak] {
      if (auto c = weak.lock()) c->send(std::string_view("hello gq\r\n"));
    };
    conn->on_data = [weak](std::span<const std::uint8_t>) {
      if (auto c = weak.lock()) c->close();
    };
    conns.push_back(std::move(conn));
  };
  // Seed-dependent launch jitter makes the recording (and so the golden
  // comparison) differ across seeds: the replay reproduces whatever
  // timing was recorded, it does not depend on these draws.
  int wave = 0;
  for (auto at = util::seconds(60); at.usec < kRunLength.usec;
       at = at + util::seconds(10)) {
    const auto jitter =
        static_cast<std::int64_t>(rig.farm->rng().next() % 5000);
    rig.farm->loop().schedule_at(util::TimePoint{at.usec + jitter},
                                 [&launch, wave] { launch(wave); });
    ++wave;
  }
  rig.farm->run_for(kRunLength);

  RunLog log;
  log.events = recorder.joined();
  log.upstream = rig.farm->gateway().upstream_trace().contents();
  log.inmate_rx = rig.farm->gateway().inmate_rx_trace().archive().records();
  for (const auto& [verdict, count] :
       rig.farm->reporter().verdict_totals())
    log.verdicts += count;
  return log;
}

RunLog replay_run(std::uint64_t seed,
                  const std::vector<pkt::PcapRecord>& records) {
  ReplayRig rig(seed);  // Same construction, no inmates.
  trace::EventRecorder recorder(rig.farm->telemetry().bus());
  const auto scheduled = trace::schedule_replay(rig.farm->gateway(), records);
  EXPECT_EQ(scheduled, records.size());  // Nothing snaplen-truncated.
  rig.farm->run_for(kRunLength);

  RunLog log;
  log.events = recorder.joined();
  log.upstream = rig.farm->gateway().upstream_trace().contents();
  for (const auto& [verdict, count] :
       rig.farm->reporter().verdict_totals())
    log.verdicts += count;
  return log;
}

class TraceReplay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceReplay, GoldenArchiveReproducesRunBitIdentically) {
  const auto seed = GetParam();
  const auto recorded = record_run(seed);
  ASSERT_GT(recorded.inmate_rx.size(), 0u);
  ASSERT_GT(recorded.verdicts, 0u);
  ASSERT_FALSE(recorded.events.empty());

  // Round-trip the capture through the on-disk archive format, as a
  // real golden file would be.
  const std::string dir =
      "trace_test_golden_" + std::to_string(seed);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  // (Re)record into a standalone tap so save/load covers the replay
  // source exactly.
  trace::ArchiveConfig config;
  config.segment_bytes = 1 << 20;
  config.max_segments = 16;
  trace::TraceTap golden("inmate_rx", config, nullptr);
  for (const auto& record : recorded.inmate_rx)
    golden.record(record.time, record.frame);
  ASSERT_TRUE(golden.save(dir));
  auto loaded = trace::load_trace(dir);
  ASSERT_TRUE(loaded.has_value());
  const auto records = loaded->archive().records();
  ASSERT_EQ(records.size(), recorded.inmate_rx.size());
  std::filesystem::remove_all(dir, ec);

  const auto replayed = replay_run(seed, records);
  EXPECT_EQ(replayed.events, recorded.events)
      << "verdict event sequence diverged";
  EXPECT_EQ(replayed.upstream, recorded.upstream)
      << "upstream egress diverged";
  EXPECT_EQ(replayed.verdicts, recorded.verdicts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceReplay,
                         ::testing::Values(0x6071ull, 0xC0FFEEull));

// Distinct seeds must give distinct runs (the comparison above is not
// vacuous).
TEST(TraceReplay, DistinctSeedsDiverge) {
  const auto a = record_run(0x6071ull);
  const auto b = record_run(0xC0FFEEull);
  EXPECT_NE(a.events, b.events);
}

// --- trace_smoke: the round trip in miniature (archive → rotate →
// index → save → load → extract), registered as its own ctest target.

TEST(TraceSmoke, ArchiveRotateIndexReplayRoundTrip) {
  const std::string dir = "trace_smoke_archive";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  trace::ArchiveConfig config;
  config.segment_bytes = 2048;
  config.max_segments = 4;
  trace::TraceTap tap("smoke", config, nullptr);
  const auto a = Ipv4Addr(10, 9, 0, 5);
  const auto b = Ipv4Addr(192, 150, 187, 12);
  for (int i = 0; i < 128; ++i)
    tap.record(util::TimePoint{i * 50}, tcp_frame(a, b, 1500, 80, 48));
  ASSERT_GT(tap.archive().evicted_segments(), 0u);
  ASSERT_TRUE(tap.save(dir));

  auto loaded = trace::load_trace(dir);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->contents(), tap.contents());
  const auto* flow = loaded->index().find(
      {pkt::FlowProto::kTcp, {a, 1500}, {b, 80}}, 0);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->packets, 128u);
  const auto extracted = loaded->extract_flow(*flow);
  EXPECT_EQ(extracted.size(), loaded->archive().retained_packets());
  // Each retained record replays byte-identically.
  const auto original = tap.archive().records();
  ASSERT_EQ(extracted.size(), original.size());
  for (std::size_t i = 0; i < extracted.size(); ++i)
    EXPECT_EQ(extracted[i].frame, original[i].frame);

  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace gq
