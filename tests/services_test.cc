// Tests for src/services: DHCP protocol/pool/client-server, DNS
// protocol/server/forwarder/stub resolver, HTTP parsing/server/client,
// and the FTP-lite server (including the STOR path the Storm iframe
// experiment depends on).
#include <gtest/gtest.h>

#include "net/stack.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "services/dhcp.h"
#include "services/dns.h"
#include "services/ftp.h"
#include "services/http.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace gq::svc {
namespace {

using util::Endpoint;
using util::Ipv4Addr;
using util::Ipv4Net;

// --- DHCP ------------------------------------------------------------

TEST(DhcpMessage, RoundTrip) {
  DhcpMessage msg;
  msg.type = DhcpType::kOffer;
  msg.is_reply = true;
  msg.xid = 0xCAFEBABE;
  msg.client_mac = util::MacAddr::local(7);
  msg.yiaddr = Ipv4Addr(10, 0, 0, 5);
  msg.subnet_mask = Ipv4Addr(255, 255, 255, 0);
  msg.router = Ipv4Addr(10, 0, 0, 254);
  msg.dns = Ipv4Addr(10, 0, 0, 53);
  auto bytes = msg.encode();
  auto parsed = DhcpMessage::parse(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, DhcpType::kOffer);
  EXPECT_TRUE(parsed->is_reply);
  EXPECT_EQ(parsed->xid, 0xCAFEBABEu);
  EXPECT_EQ(parsed->client_mac, msg.client_mac);
  EXPECT_EQ(parsed->yiaddr, msg.yiaddr);
  EXPECT_EQ(parsed->router, msg.router);
  EXPECT_EQ(parsed->dns, msg.dns);
}

TEST(DhcpMessage, RejectsGarbage) {
  std::vector<std::uint8_t> junk(300, 0x5A);
  EXPECT_FALSE(DhcpMessage::parse(junk));
  EXPECT_FALSE(DhcpMessage::parse(std::vector<std::uint8_t>{1, 2, 3}));
}

DhcpLeaseConfig test_lease_config() {
  return DhcpLeaseConfig{Ipv4Net(Ipv4Addr(10, 0, 0, 0), 24),
                         Ipv4Addr(10, 0, 0, 254), Ipv4Addr(10, 0, 0, 53),
                         Ipv4Addr(10, 0, 0, 254)};
}

TEST(DhcpPool, DiscoverOfferRequestAck) {
  DhcpPool pool(test_lease_config(), 10, 12);
  DhcpMessage discover;
  discover.type = DhcpType::kDiscover;
  discover.xid = 1;
  discover.client_mac = util::MacAddr::local(1);
  auto offer = pool.handle(discover);
  ASSERT_TRUE(offer);
  EXPECT_EQ(offer->type, DhcpType::kOffer);
  EXPECT_EQ(offer->yiaddr, Ipv4Addr(10, 0, 0, 10));

  DhcpMessage request = discover;
  request.type = DhcpType::kRequest;
  request.requested_ip = offer->yiaddr;
  auto ack = pool.handle(request);
  ASSERT_TRUE(ack);
  EXPECT_EQ(ack->type, DhcpType::kAck);
  EXPECT_EQ(ack->yiaddr, Ipv4Addr(10, 0, 0, 10));
  EXPECT_EQ(pool.leases_in_use(), 1u);
}

TEST(DhcpPool, StickyPerMac) {
  DhcpPool pool(test_lease_config(), 10, 20);
  DhcpMessage d;
  d.type = DhcpType::kDiscover;
  d.client_mac = util::MacAddr::local(1);
  auto first = pool.handle(d);
  auto second = pool.handle(d);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->yiaddr, second->yiaddr);
}

TEST(DhcpPool, ExhaustionAndRelease) {
  DhcpPool pool(test_lease_config(), 10, 11);  // Two addresses.
  for (int i = 0; i < 2; ++i) {
    DhcpMessage d;
    d.type = DhcpType::kDiscover;
    d.client_mac = util::MacAddr::local(i);
    EXPECT_TRUE(pool.handle(d));
  }
  DhcpMessage d3;
  d3.type = DhcpType::kDiscover;
  d3.client_mac = util::MacAddr::local(99);
  EXPECT_FALSE(pool.handle(d3));  // Exhausted.
  pool.release(util::MacAddr::local(0));
  EXPECT_TRUE(pool.handle(d3));  // Freed address reused.
}

TEST(DhcpPool, NakForWrongAddress) {
  DhcpPool pool(test_lease_config(), 10, 20);
  DhcpMessage request;
  request.type = DhcpType::kRequest;
  request.client_mac = util::MacAddr::local(5);
  request.requested_ip = Ipv4Addr(10, 0, 0, 99);  // Never offered.
  auto reply = pool.handle(request);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->type, DhcpType::kNak);
}

// Full client/server exchange over a simulated wire.
TEST(Dhcp, ClientAcquiresLease) {
  sim::EventLoop loop;
  sim::VlanSwitch sw(loop, "sw", 2);
  net::HostStack server(loop, "dhcpd", util::MacAddr::local(1), 1);
  net::HostStack client(loop, "pc", util::MacAddr::local(2), 2);
  sim::Port::connect(server.nic(), sw.port(0), util::microseconds(10));
  sim::Port::connect(client.nic(), sw.port(1), util::microseconds(10));
  sw.set_access(0, 3);
  sw.set_access(1, 3);
  server.configure({Ipv4Addr(10, 0, 0, 254), Ipv4Net(Ipv4Addr(10, 0, 0, 0), 24),
                    Ipv4Addr(10, 0, 0, 254), {}});
  DhcpServer dhcpd(server, DhcpPool(test_lease_config(), 100, 200));

  bool configured = false;
  DhcpClient dhcp_client(client, [&](const net::Ipv4Config& config) {
    configured = true;
    EXPECT_EQ(config.addr, Ipv4Addr(10, 0, 0, 100));
    EXPECT_EQ(config.gateway, Ipv4Addr(10, 0, 0, 254));
    EXPECT_EQ(config.dns, Ipv4Addr(10, 0, 0, 53));
  });
  dhcp_client.start();
  loop.run_for(util::seconds(10));
  EXPECT_TRUE(configured);
  EXPECT_TRUE(client.configured());
  EXPECT_TRUE(dhcp_client.bound());
}

// --- DNS -------------------------------------------------------------

TEST(DnsMessage, RoundTrip) {
  DnsMessage msg;
  msg.id = 0x1234;
  msg.qname = "cc.botnet.example";
  msg.is_response = true;
  msg.answers = {Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8)};
  auto bytes = msg.encode();
  auto parsed = DnsMessage::parse(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->id, 0x1234);
  EXPECT_EQ(parsed->qname, "cc.botnet.example");
  EXPECT_TRUE(parsed->is_response);
  ASSERT_EQ(parsed->answers.size(), 2u);
  EXPECT_EQ(parsed->answers[1], Ipv4Addr(5, 6, 7, 8));
}

TEST(DnsMessage, NxdomainRcode) {
  DnsMessage msg;
  msg.qname = "nope.example";
  msg.is_response = true;
  msg.rcode = 3;
  auto parsed = DnsMessage::parse(msg.encode());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->rcode, 3);
  EXPECT_TRUE(parsed->answers.empty());
}

TEST(DnsMessage, CaseInsensitiveName) {
  DnsMessage msg;
  msg.qname = "MiXeD.Example";
  // Our encoder writes as given; the parser lowercases.
  auto parsed = DnsMessage::parse(msg.encode());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->qname, "mixed.example");
}

// Topology: client -> forwarder -> authoritative server.
struct DnsFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::VlanSwitch sw{loop, "sw", 3};
  net::HostStack auth{loop, "auth", util::MacAddr::local(1), 1};
  net::HostStack fwd{loop, "fwd", util::MacAddr::local(2), 2};
  net::HostStack client{loop, "client", util::MacAddr::local(3), 3};

  void SetUp() override {
    for (std::size_t i = 0; i < 3; ++i) sw.set_access(i, 9);
    sim::Port::connect(auth.nic(), sw.port(0), util::microseconds(10));
    sim::Port::connect(fwd.nic(), sw.port(1), util::microseconds(10));
    sim::Port::connect(client.nic(), sw.port(2), util::microseconds(10));
    const Ipv4Net net(Ipv4Addr(10, 1, 0, 0), 24);
    auth.configure({Ipv4Addr(10, 1, 0, 1), net, {}, {}});
    fwd.configure({Ipv4Addr(10, 1, 0, 2), net, {}, {}});
    client.configure({Ipv4Addr(10, 1, 0, 3), net, {}, Ipv4Addr(10, 1, 0, 2)});
  }
};

TEST_F(DnsFixture, ResolveThroughForwarder) {
  DnsServer server(auth);
  server.add_record("cc.evil.example", Ipv4Addr(6, 6, 6, 6));
  DnsForwarder forwarder(fwd, {Ipv4Addr(10, 1, 0, 1), 53});
  StubResolver resolver(client);

  std::optional<Ipv4Addr> result;
  bool called = false;
  resolver.resolve("CC.Evil.Example", [&](std::optional<Ipv4Addr> addr) {
    called = true;
    result = addr;
  });
  loop.run_for(util::seconds(5));
  ASSERT_TRUE(called);
  ASSERT_TRUE(result);
  EXPECT_EQ(*result, Ipv4Addr(6, 6, 6, 6));
  EXPECT_EQ(forwarder.forwarded(), 1u);
  EXPECT_EQ(server.queries_served(), 1u);
}

TEST_F(DnsFixture, NxdomainPropagates) {
  DnsServer server(auth);
  DnsForwarder forwarder(fwd, {Ipv4Addr(10, 1, 0, 1), 53});
  StubResolver resolver(client);
  bool called = false;
  std::optional<Ipv4Addr> result = Ipv4Addr(9, 9, 9, 9);
  resolver.resolve("dga-a8f3k2.example", [&](std::optional<Ipv4Addr> addr) {
    called = true;
    result = addr;
  });
  loop.run_for(util::seconds(5));
  EXPECT_TRUE(called);
  EXPECT_FALSE(result);
}

TEST_F(DnsFixture, ForwarderCaches) {
  DnsServer server(auth);
  server.add_record("x.example", Ipv4Addr(1, 1, 1, 1));
  DnsForwarder forwarder(fwd, {Ipv4Addr(10, 1, 0, 1), 53});
  StubResolver resolver(client);
  int answers = 0;
  // Sequential queries: each launched after the previous one resolves so
  // the second and third hit the forwarder's cache.
  std::function<void(int)> ask = [&](int remaining) {
    resolver.resolve("x.example", [&, remaining](std::optional<Ipv4Addr> a) {
      if (a) ++answers;
      if (remaining > 1) ask(remaining - 1);
    });
  };
  ask(3);
  loop.run_for(util::seconds(5));
  EXPECT_EQ(answers, 3);
  EXPECT_EQ(server.queries_served(), 1u);  // Served once, cached after.
  EXPECT_EQ(forwarder.cache_hits(), 2u);
}

TEST_F(DnsFixture, GlobRecords) {
  DnsServer server(auth);
  server.add_record("*.fastflux.example", Ipv4Addr(2, 2, 2, 2));
  DnsForwarder forwarder(fwd, {Ipv4Addr(10, 1, 0, 1), 53});
  StubResolver resolver(client);
  std::optional<Ipv4Addr> result;
  resolver.resolve("node1234.fastflux.example",
                   [&](std::optional<Ipv4Addr> addr) { result = addr; });
  loop.run_for(util::seconds(5));
  ASSERT_TRUE(result);
  EXPECT_EQ(*result, Ipv4Addr(2, 2, 2, 2));
}

TEST_F(DnsFixture, ResolverTimesOutWithoutServer) {
  // No DNS server running at all.
  StubResolver resolver(client);
  bool called = false;
  std::optional<Ipv4Addr> result = Ipv4Addr(1, 1, 1, 1);
  resolver.resolve("anything.example", [&](std::optional<Ipv4Addr> addr) {
    called = true;
    result = addr;
  });
  loop.run_for(util::seconds(30));
  EXPECT_TRUE(called);
  EXPECT_FALSE(result);
}

// --- HTTP ------------------------------------------------------------

TEST(HttpMessage, RequestEncodeParse) {
  HttpRequest req;
  req.method = "GET";
  req.path = "/bot.exe";
  req.set_header("Host", "dl.evil.example");
  HttpRequestParser parser;
  auto encoded = req.encode();
  parser.feed(util::to_bytes(encoded));
  auto parsed = parser.take();
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->path, "/bot.exe");
  EXPECT_EQ(parsed->header("host"), "dl.evil.example");
  EXPECT_FALSE(parser.take());  // Nothing left.
}

TEST(HttpMessage, ResponseWithBody) {
  auto rsp = HttpResponse::make(404, "NOT FOUND", "gone");
  HttpResponseParser parser;
  parser.feed(util::to_bytes(rsp.encode()));
  auto parsed = parser.take();
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "NOT FOUND");
  EXPECT_EQ(parsed->body, "gone");
}

TEST(HttpMessage, IncrementalFeed) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/c2";
  req.body = "beacon-data";
  req.set_header("Content-Length", "11");
  const std::string wire = req.encode();
  HttpRequestParser parser;
  // Byte-at-a-time: parser must not complete early.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    parser.feed(util::to_bytes(wire.substr(i, 1)));
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(parser.take());
    }
  }
  auto parsed = parser.take();
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->body, "beacon-data");
}

TEST(HttpMessage, PipelinedRequests) {
  HttpRequest a, b;
  a.path = "/one";
  b.path = "/two";
  HttpRequestParser parser;
  parser.feed(util::to_bytes(a.encode() + b.encode()));
  auto first = parser.take();
  auto second = parser.take();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->path, "/one");
  EXPECT_EQ(second->path, "/two");
}

TEST(HttpMessage, MalformedStartLineFails) {
  HttpRequestParser parser;
  parser.feed(util::to_bytes("NOT-HTTP\r\n\r\n"));
  EXPECT_FALSE(parser.take());
  EXPECT_TRUE(parser.failed());
}

struct HttpFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::VlanSwitch sw{loop, "sw", 2};
  net::HostStack server{loop, "www", util::MacAddr::local(1), 1};
  net::HostStack client{loop, "c", util::MacAddr::local(2), 2};

  void SetUp() override {
    sw.set_access(0, 4);
    sw.set_access(1, 4);
    sim::Port::connect(server.nic(), sw.port(0), util::microseconds(10));
    sim::Port::connect(client.nic(), sw.port(1), util::microseconds(10));
    const Ipv4Net net(Ipv4Addr(10, 2, 0, 0), 24);
    server.configure({Ipv4Addr(10, 2, 0, 1), net, {}, {}});
    client.configure({Ipv4Addr(10, 2, 0, 2), net, {}, {}});
  }
};

TEST_F(HttpFixture, ServerAndClient) {
  HttpServer httpd(server, 80, [](const HttpRequest& req, util::Endpoint) {
    if (req.path == "/hello")
      return HttpResponse::make(200, "OK", "world");
    return HttpResponse::make(404, "NOT FOUND", "");
  });
  std::optional<HttpResponse> got;
  HttpRequest req;
  req.path = "/hello";
  HttpClient::fetch(client, {Ipv4Addr(10, 2, 0, 1), 80}, req,
                    [&](std::optional<HttpResponse> rsp) { got = rsp; });
  loop.run_for(util::seconds(5));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "world");
  EXPECT_EQ(httpd.requests_served(), 1u);
}

TEST_F(HttpFixture, NotFoundAndConnectionFailure) {
  HttpServer httpd(server, 80, [](const HttpRequest&, util::Endpoint) {
    return HttpResponse::make(404, "NOT FOUND", "");
  });
  std::optional<HttpResponse> got;
  bool called = false;
  HttpRequest req;
  HttpClient::fetch(client, {Ipv4Addr(10, 2, 0, 1), 80}, req,
                    [&](std::optional<HttpResponse> rsp) {
                      called = true;
                      got = rsp;
                    });
  loop.run_for(util::seconds(5));
  ASSERT_TRUE(called);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->status, 404);

  // No server on this port: callback must fire with nullopt.
  bool failed_called = false;
  std::optional<HttpResponse> failed_rsp;
  HttpClient::fetch(client, {Ipv4Addr(10, 2, 0, 1), 8080}, req,
                    [&](std::optional<HttpResponse> rsp) {
                      failed_called = true;
                      failed_rsp = rsp;
                    });
  loop.run_for(util::seconds(10));
  EXPECT_TRUE(failed_called);
  EXPECT_FALSE(failed_rsp);
}

TEST_F(HttpFixture, LargeBodyTransfer) {
  const std::string blob(300'000, 'B');
  HttpServer httpd(server, 80, [&](const HttpRequest&, util::Endpoint) {
    return HttpResponse::make(200, "OK", blob);
  });
  std::optional<HttpResponse> got;
  HttpClient::fetch(client, {Ipv4Addr(10, 2, 0, 1), 80}, HttpRequest{},
                    [&](std::optional<HttpResponse> rsp) { got = rsp; });
  loop.run_for(util::seconds(30));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->body.size(), blob.size());
}

// --- FTP -------------------------------------------------------------

struct FtpFixture : HttpFixture {};

// Drives the FTP control/data protocol as the Storm iframe injector did:
// login, fetch a page, re-upload it modified.
TEST_F(FtpFixture, RetrieveModifyStore) {
  FtpServer ftpd(server, 21, "webmaster", "hunter2");
  ftpd.files()["index.html"] = "<html><body>hi</body></html>";

  auto control = client.connect({Ipv4Addr(10, 2, 0, 1), 21});
  auto state = std::make_shared<int>(0);
  auto page = std::make_shared<std::string>();
  auto buffer = std::make_shared<std::string>();
  auto data_conn = std::make_shared<std::shared_ptr<net::TcpConnection>>();

  control->on_data = [&, control, state, page, buffer,
                      data_conn](std::span<const std::uint8_t> d) {
    buffer->append(reinterpret_cast<const char*>(d.data()), d.size());
    std::size_t pos;
    while ((pos = buffer->find("\r\n")) != std::string::npos) {
      std::string line = buffer->substr(0, pos);
      buffer->erase(0, pos + 2);
      const std::string code = line.substr(0, 3);
      if (code == "220") {
        control->send("USER webmaster\r\n");
      } else if (code == "331") {
        control->send("PASS hunter2\r\n");
      } else if (code == "230") {
        control->send("PASV\r\n");
      } else if (code == "227") {
        // Parse "(h1,h2,h3,h4,p1,p2)".
        auto open = line.find('(');
        auto parts = util::split(line.substr(open + 1,
                                             line.find(')') - open - 1), ',');
        const std::uint16_t port = static_cast<std::uint16_t>(
            (*util::parse_int(parts[4]) << 8) | *util::parse_int(parts[5]));
        *data_conn = client.connect({Ipv4Addr(10, 2, 0, 1), port});
        if (*state == 0) {
          (*data_conn)->on_data = [page](std::span<const std::uint8_t> d) {
            page->append(reinterpret_cast<const char*>(d.data()), d.size());
          };
          (*data_conn)->on_connected = [control] {
            control->send("RETR index.html\r\n");
          };
        } else {
          (*data_conn)->on_connected = [control] {
            control->send("STOR index.html\r\n");
          };
        }
      } else if (code == "226" && *state == 0) {
        *state = 1;
        control->send("PASV\r\n");  // Second transfer: upload.
      } else if (code == "150" && *state == 1) {
        const std::string modified =
            *page + "<iframe src=\"http://evil.example/\"></iframe>";
        (*data_conn)->send(modified);
        (*data_conn)->close();
        *state = 2;
      } else if (code == "226" && *state == 2) {
        control->send("QUIT\r\n");
      }
    }
  };
  loop.run_for(util::seconds(30));
  EXPECT_EQ(ftpd.logins(), 1u);
  EXPECT_EQ(ftpd.retrievals(), 1u);
  EXPECT_EQ(ftpd.stores(), 1u);
  EXPECT_NE(ftpd.files()["index.html"].find("<iframe"), std::string::npos);
}

TEST_F(FtpFixture, WrongPasswordRejected) {
  FtpServer ftpd(server, 21, "admin", "secret");
  auto control = client.connect({Ipv4Addr(10, 2, 0, 1), 21});
  auto got530 = std::make_shared<bool>(false);
  auto buffer = std::make_shared<std::string>();
  control->on_data = [control, got530,
                      buffer](std::span<const std::uint8_t> d) {
    buffer->append(reinterpret_cast<const char*>(d.data()), d.size());
    if (buffer->find("220") != std::string::npos &&
        buffer->find("USER-SENT") == std::string::npos) {
      buffer->append("USER-SENT");
      control->send("USER admin\r\nPASS wrong\r\n");
    }
    if (buffer->find("530") != std::string::npos) *got530 = true;
  };
  loop.run_for(util::seconds(10));
  EXPECT_TRUE(*got530);
  EXPECT_EQ(ftpd.logins(), 0u);
}

}  // namespace
}  // namespace gq::svc
