// Tests for the paper's suggested extensions and for robustness under
// adverse conditions: containment-server clustering (§7.2), the DNS
// sinkhole policy (UDP REWRITE), the policy prober (§8 future work),
// packet loss on farm links (shim retransmission + splice replay), flow
// garbage collection, and malformed-input fuzzing of the frame decoder.
#include <gtest/gtest.h>

#include "containment/policies.h"
#include "containment/prober.h"
#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/dgabot.h"
#include "malware/spambot.h"
#include "packet/frame.h"
#include "util/bytes.h"
#include "services/http.h"
#include "util/strings.h"

namespace gq {
namespace {

using util::Ipv4Addr;

// --- Containment-server cluster (§7.2) ---------------------------------

TEST(CsCluster, DistributesDecisionsByVlan) {
  core::Farm farm;
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  auto& sub = farm.add_subfarm("Clustered");
  sub.add_catchall_sink();
  sinks::SmtpSinkConfig sink_config;
  sink_config.port = 2526;
  auto& sink = sub.add_smtp_sink(sink_config, "bannersmtpsink");
  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
  sub.containment().samples().add("grum.000.exe");
  auto& second_cs = sub.add_containment_server();
  second_cs.samples().add("grum.000.exe");
  sub.catalog().register_prototype(
      "grum.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "grum";
        config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
        config.send_interval = util::seconds(2);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  sub.configure_containment(
      "[VLAN 16-31]\nDecider = Grum\nInfection = grum.*\n");

  // VLANs 16 and 17 land on different cluster members.
  sub.create_inmate(inm::HostingKind::kVm, 16);
  sub.create_inmate(inm::HostingKind::kVm, 17);
  farm.run_for(util::minutes(10));

  auto cluster = sub.containment_cluster();
  ASSERT_EQ(cluster.size(), 2u);
  EXPECT_GT(cluster[0]->flows_decided(), 10u);
  EXPECT_GT(cluster[1]->flows_decided(), 10u);
  // Both inmates' spam ends up harvested; nothing broke.
  EXPECT_GT(sink.by_source().size(), 1u);
  EXPECT_GT(sink.data_transfers(), 100u);
}

// --- DNS sinkhole (UDP REWRITE) -----------------------------------------

TEST(DnsSinkhole, SteersDgaBotIntoSink) {
  core::Farm farm;
  core::SubfarmOptions options;
  options.dns_service = Ipv4Addr(198, 41, 0, 4);  // Fake external resolver.
  auto& sub = farm.add_subfarm("DgaLab", options);
  auto& sink = sub.add_catchall_sink();
  const util::Ipv4Addr sink_addr = sub.policy_env().service("sink").addr;

  mal::DgaBotConfig bot_config;
  bot_config.domains_per_round = 8;
  bot_config.c2_port = 9999;  // Same port the sink listens on.

  auto policy =
      std::make_shared<cs::DnsSinkholePolicy>(sub.policy_env(), sink_addr);
  // Sinkhole the 4th generated domain of day 0.
  policy->add_sinkholed_domain(
      mal::dga_domain(bot_config.dga_seed, 0, 3, bot_config.tld));
  sub.bind_policy(16, 31, policy);

  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));
  inmate.infect_with(
      std::make_unique<mal::DgaBotBehavior>(bot_config, farm.rng().fork()),
      "dga.exe");
  farm.run_for(util::minutes(5));

  EXPECT_GE(policy->queries_answered(), 4u);   // NXDOMAINs + the hit.
  EXPECT_GE(policy->queries_sinkholed(), 1u);
  // The bot resolved the sinkholed domain and connected — into the sink.
  EXPECT_GE(sink.tcp_flows(), 1u);
  bool saw_dga_hello = false;
  for (const auto& record : sink.records())
    if (record.first_bytes.find("HELLO-DGA") != std::string::npos)
      saw_dga_hello = true;
  EXPECT_TRUE(saw_dga_hello);
}

// --- Policy prober (§8 future work) -------------------------------------

TEST(PolicyProber, RustockPassesSafetyExpectations) {
  cs::register_builtin_policies();
  cs::PolicyEnv env;
  env.services["sink"] = {Ipv4Addr(10, 3, 0, 9), 9999};
  env.services["smtpsink"] = {Ipv4Addr(10, 3, 0, 10), 2525};
  auto policy = cs::PolicyRegistry::instance().create("Rustock", env);
  ASSERT_TRUE(policy);

  cs::PolicyProber prober(policy);
  prober.expect_no_spam_escape();
  prober.run();
  EXPECT_GT(prober.probes().size(), 100u);
  EXPECT_TRUE(prober.violations().empty());
  const std::string card = prober.render_card();
  EXPECT_NE(card.find("Rustock"), std::string::npos);
  EXPECT_NE(card.find("0 violated"), std::string::npos);
  EXPECT_NE(card.find("port 25"), std::string::npos);
}

TEST(PolicyProber, ForwardAllViolatesSpamEscape) {
  cs::PolicyProber prober(std::make_shared<cs::ForwardAllPolicy>());
  prober.expect_no_spam_escape();
  prober.run();
  EXPECT_FALSE(prober.violations().empty());
  EXPECT_NE(prober.render_card().find("VIOLATION"), std::string::npos);
}

TEST(PolicyProber, CustomExpectation) {
  cs::PolicyEnv env;
  env.services["sink"] = {Ipv4Addr(10, 3, 0, 9), 9999};
  cs::PolicyProber prober(std::make_shared<cs::SinkAllPolicy>(env));
  prober.expect(*cs::FlowPattern::parse("*:*/*"),
                {shim::Verdict::kReflect},
                "a sink-all policy must only ever reflect");
  prober.run();
  EXPECT_TRUE(prober.violations().empty());
}

// --- Robustness: packet loss on the inmate link --------------------------

TEST(Robustness, ReflectSurvivesLossyInmateLink) {
  core::Farm farm;
  auto& sub = farm.add_subfarm("Lossy");
  auto& sink = sub.add_catchall_sink();
  sub.bind_policy(16, 31,
                  std::make_shared<cs::SinkAllPolicy>(sub.policy_env()));
  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));
  ASSERT_EQ(inmate.state(), inm::InmateState::kRunning);

  // 10% loss on the inmate's NIC from here on: the shim exchange, the
  // splice, and the replay all have to retransmit their way through.
  inmate.host().nic().set_loss(0.10, 77);

  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    auto conn = inmate.host().connect({Ipv4Addr(7, 7, 7, 7), 6667});
    conn->on_connected = [conn, &delivered] {
      conn->send("BEACON\r\n");
      ++delivered;
      conn->close();
    };
  }
  farm.run_for(util::minutes(5));
  EXPECT_GE(delivered, 8);  // A few may exhaust retries; most connect.
  EXPECT_GE(sink.tcp_flows(), 8u);
  int beacons = 0;
  for (const auto& record : sink.records())
    if (record.first_bytes.find("BEACON") != std::string::npos) ++beacons;
  EXPECT_GE(beacons, 8);
}

// --- Flow garbage collection ---------------------------------------------

TEST(Robustness, IdleFlowsAreCollected) {
  core::Farm farm;
  auto& sub = farm.add_subfarm("Gc");
  sub.add_catchall_sink();
  sub.bind_policy(16, 31,
                  std::make_shared<cs::SinkAllPolicy>(sub.policy_env()));
  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));

  for (int i = 0; i < 5; ++i) {
    auto conn = inmate.host().connect({Ipv4Addr(9, 9, 9, 9), 6667});
    conn->on_connected = [conn] { conn->send("x"); };
    // Deliberately never closed: the flow goes idle.
  }
  farm.run_for(util::minutes(1));
  EXPECT_GE(sub.router().flows_active(), 5u);
  // Default flow timeout is 5 minutes of inactivity.
  farm.run_for(util::minutes(7));
  EXPECT_EQ(sub.router().flows_active(), 0u);
  EXPECT_EQ(sub.router().flows_created(), 5u);
}

// --- Frame decoder fuzz -----------------------------------------------------

TEST(Fuzz, DecodeFrameNeverCrashesOnGarbage) {
  util::Rng rng(0xFACE);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t size = rng.below(120);
    std::vector<std::uint8_t> bytes(size);
    for (auto& byte : bytes)
      byte = static_cast<std::uint8_t>(rng.next());
    auto frame = pkt::decode_frame(bytes);  // Must not crash or throw.
    if (frame && frame->ip) {
      // Whatever parsed must re-encode without crashing either.
      frame->encode();
    }
  }
  SUCCEED();
}

TEST(Fuzz, DecodeTruncatedRealFramesNeverCrashes) {
  // Take a real frame and feed every prefix of it.
  pkt::DecodedFrame frame;
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  frame.eth.vlan = 16;
  frame.ip = pkt::Ipv4Packet{};
  frame.ip->src = Ipv4Addr(10, 0, 0, 23);
  frame.ip->dst = Ipv4Addr(1, 2, 3, 4);
  frame.tcp = pkt::TcpSegment{};
  frame.tcp->payload = util::to_bytes("GET / HTTP/1.1\r\n");
  auto bytes = frame.encode();
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    pkt::decode_frame(prefix);
  }
  SUCCEED();
}

}  // namespace
}  // namespace gq
