// Tests for the simulated external Internet (src/extnet): the CBL
// blacklist, the HELO-policing SMTP server, the C&C server, the ad
// server, and the Storm botmaster client.
#include <gtest/gtest.h>

#include "extnet/extnet.h"
#include "net/stack.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "services/http.h"

namespace gq::ext {
namespace {

using util::Endpoint;
using util::Ipv4Addr;
using util::Ipv4Net;

TEST(Cbl, ListsOnceAndAnswersQueries) {
  Cbl cbl;
  EXPECT_FALSE(cbl.is_listed(Ipv4Addr(1, 2, 3, 4)));
  cbl.list(Ipv4Addr(1, 2, 3, 4), "first reason");
  cbl.list(Ipv4Addr(1, 2, 3, 4), "second reason");  // Idempotent.
  EXPECT_TRUE(cbl.is_listed(Ipv4Addr(1, 2, 3, 4)));
  ASSERT_EQ(cbl.entries().size(), 1u);
  EXPECT_EQ(cbl.entries().begin()->second, "first reason");
}

struct ExtNetFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::VlanSwitch sw{loop, "sw", 4};
  net::HostStack server{loop, "srv", util::MacAddr::local(1), 1};
  net::HostStack client{loop, "cli", util::MacAddr::local(2), 2};

  void SetUp() override {
    sw.set_access(0, 3);
    sw.set_access(1, 3);
    sim::Port::connect(server.nic(), sw.port(0), util::microseconds(20));
    sim::Port::connect(client.nic(), sw.port(1), util::microseconds(20));
    const Ipv4Net net(Ipv4Addr(10, 8, 0, 0), 24);
    server.configure({Ipv4Addr(10, 8, 0, 1), net, {}, {}});
    client.configure({Ipv4Addr(10, 8, 0, 2), net, {}, {}});
  }

  // Scripted SMTP client: sends each command after each server line.
  void run_smtp(std::vector<std::string> commands) {
    auto conn = client.connect({Ipv4Addr(10, 8, 0, 1), 25});
    auto buffer = std::make_shared<std::string>();
    auto cursor = std::make_shared<std::size_t>(0);
    auto cmds = std::make_shared<std::vector<std::string>>(std::move(commands));
    conn->on_data = [conn, buffer, cursor, cmds](std::span<const std::uint8_t> d) {
      buffer->append(reinterpret_cast<const char*>(d.data()), d.size());
      while (*cursor < cmds->size() &&
             static_cast<std::size_t>(
                 std::count(buffer->begin(), buffer->end(), '\n')) >
                 *cursor) {
        conn->send((*cmds)[*cursor] + "\r\n");
        ++(*cursor);
      }
    };
    loop.run_for(util::seconds(20));
  }
};

TEST_F(ExtNetFixture, PolicedSmtpDetectsBotHelo) {
  Cbl cbl;
  PolicedSmtpServer smtp(server, 25, &cbl);
  smtp.add_bot_helo("wergvan");
  run_smtp({"HELO wergvan", "QUIT"});
  EXPECT_EQ(smtp.sessions(), 1u);
  EXPECT_EQ(smtp.bot_helos_detected(), 1u);
  EXPECT_TRUE(cbl.is_listed(Ipv4Addr(10, 8, 0, 2)));
}

TEST_F(ExtNetFixture, PolicedSmtpAcceptsCleanClients) {
  Cbl cbl;
  PolicedSmtpServer smtp(server, 25, &cbl);
  smtp.add_bot_helo("wergvan");
  run_smtp({"HELO legit.example", "MAIL FROM:<a@b>", "RCPT TO:<c@d>",
            "DATA", "hi\r\n.", "QUIT"});
  EXPECT_EQ(smtp.bot_helos_detected(), 0u);
  EXPECT_EQ(smtp.messages_accepted(), 1u);
  EXPECT_FALSE(cbl.is_listed(Ipv4Addr(10, 8, 0, 2)));
}

TEST_F(ExtNetFixture, CcServerServesDocumentsAndLogs) {
  CcServer cc(server, 80);
  cc.set_document("/c2/tasks", "target 1.2.3.4:25\n");
  std::optional<svc::HttpResponse> ok, missing;
  svc::HttpRequest request;
  request.path = "/c2/tasks";
  svc::HttpClient::fetch(client, {Ipv4Addr(10, 8, 0, 1), 80}, request,
                         [&](std::optional<svc::HttpResponse> r) { ok = r; });
  loop.run_for(util::seconds(5));
  request.path = "/nope";
  svc::HttpClient::fetch(client, {Ipv4Addr(10, 8, 0, 1), 80}, request,
                         [&](std::optional<svc::HttpResponse> r) {
                           missing = r;
                         });
  loop.run_for(util::seconds(5));
  ASSERT_TRUE(ok);
  EXPECT_EQ(ok->status, 200);
  EXPECT_NE(ok->body.find("target"), std::string::npos);
  ASSERT_TRUE(missing);
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(cc.requests(), 2u);
  ASSERT_EQ(cc.request_log().size(), 2u);
  EXPECT_EQ(cc.request_log()[0], "GET /c2/tasks");
}

TEST_F(ExtNetFixture, AdServerCountsByReferer) {
  AdServer ads(server, 80);
  for (int i = 0; i < 3; ++i) {
    svc::HttpRequest request;
    request.path = "/ad?id=1";
    request.set_header("Referer", i < 2 ? "http://a.example/"
                                        : "http://b.example/");
    svc::HttpClient::fetch(client, {Ipv4Addr(10, 8, 0, 1), 80}, request,
                           [](std::optional<svc::HttpResponse>) {});
    loop.run_for(util::seconds(3));
  }
  EXPECT_EQ(ads.clicks(), 3u);
  EXPECT_EQ(ads.clicks_by_referer().at("http://a.example/"), 2u);
  EXPECT_EQ(ads.clicks_by_referer().at("http://b.example/"), 1u);
}

TEST_F(ExtNetFixture, StormMasterCountsAcks) {
  // A fake bot that ACKs every job line.
  server.listen(8080, [](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data = [conn](std::span<const std::uint8_t>) {
      conn->send("OK\n");
    };
  });
  StormMaster master(client);
  master.send_ftp_inject({Ipv4Addr(10, 8, 0, 1), 8080},
                         {Ipv4Addr(9, 9, 9, 9), 21}, "u", "p", "/x.html",
                         "<iframe></iframe>");
  loop.run_for(util::seconds(5));
  EXPECT_EQ(master.jobs_sent(), 1u);
  EXPECT_EQ(master.acks_received(), 1u);
}

}  // namespace
}  // namespace gq::ext
