// Tests for the reporting pipeline: event aggregation, the Figure 7
// render format, verdict totals (the containment-verification signal),
// blacklist checking, and report rotation.
#include <gtest/gtest.h>

#include "report/reporter.h"

namespace gq::rep {
namespace {

using util::Endpoint;
using util::Ipv4Addr;

gw::FlowEvent verdict_event(const std::string& subfarm, std::uint16_t vlan,
                            shim::Verdict verdict,
                            const std::string& policy,
                            const std::string& annotation, Endpoint dst) {
  gw::FlowEvent event;
  event.kind = gw::FlowEvent::Kind::kVerdict;
  event.subfarm = subfarm;
  event.vlan = vlan;
  event.verdict = verdict;
  event.policy_name = policy;
  event.annotation = annotation;
  event.orig_dst = dst;
  return event;
}

TEST(Reporter, AggregatesVerdictsPerInmate) {
  Reporter reporter;
  for (int i = 0; i < 682; ++i) {
    reporter.on_flow_event(verdict_event(
        "Botfarm", 18, shim::Verdict::kForward, "Grum", "C&C port",
        {Ipv4Addr(50, 8, 207, 91), 80}));
  }
  for (int i = 0; i < 144; ++i) {
    reporter.on_flow_event(verdict_event(
        "Botfarm", 18, shim::Verdict::kReflect, "Grum",
        "full SMTP containment", {Ipv4Addr(1, 2, static_cast<std::uint8_t>(i), 4), 25}));
  }
  EXPECT_EQ(reporter.flows("Botfarm", 18, shim::Verdict::kForward), 682u);
  EXPECT_EQ(reporter.flows("Botfarm", 18, shim::Verdict::kReflect), 144u);
  EXPECT_EQ(reporter.flows("Botfarm", 19, shim::Verdict::kReflect), 0u);
  EXPECT_EQ(reporter.flows("Other", 18, shim::Verdict::kReflect), 0u);

  auto totals = reporter.verdict_totals();
  EXPECT_EQ(totals[shim::Verdict::kForward], 682u);
  EXPECT_EQ(totals[shim::Verdict::kReflect], 144u);
}

TEST(Reporter, RenderMatchesFigure7Shape) {
  Reporter reporter;
  reporter.on_flow_event(verdict_event("Botfarm", 18,
                                       shim::Verdict::kForward, "Grum",
                                       "C&C port",
                                       {Ipv4Addr(50, 8, 207, 91), 80}));
  for (int i = 0; i < 3; ++i) {
    reporter.on_flow_event(verdict_event(
        "Botfarm", 18, shim::Verdict::kReflect, "Grum",
        "full SMTP containment",
        {Ipv4Addr(9, 9, static_cast<std::uint8_t>(i), 9), 25}));
  }
  cs::CsEvent infection;
  infection.kind = cs::CsEvent::Kind::kInfectionServed;
  infection.vlan = 18;
  infection.sample_name = "grum.100818.000.exe";
  infection.sample_md5 = "6f007d640b3d5786a84dedf026c1507c";
  reporter.on_cs_event("Botfarm", infection);

  const std::string report = reporter.render(util::TimePoint{});
  EXPECT_NE(report.find("Inmate Activity"), std::string::npos);
  EXPECT_NE(report.find("Subfarm 'Botfarm'"), std::string::npos);
  EXPECT_NE(report.find("Grum"), std::string::npos);
  EXPECT_NE(report.find("VLAN 18"), std::string::npos);
  EXPECT_NE(report.find("FORWARD"), std::string::npos);
  EXPECT_NE(report.find("C&C port"), std::string::npos);
  // Single target: concrete address; spread targets: wildcard.
  EXPECT_NE(report.find("50.8.207.91"), std::string::npos);
  EXPECT_NE(report.find("*.*.*.*"), std::string::npos);
  EXPECT_NE(report.find("http"), std::string::npos);
  EXPECT_NE(report.find("smtp"), std::string::npos);
  // Auto-infection MD5 shown (Figure 7's REWRITE line).
  EXPECT_NE(report.find("6f007d640b3d5786a84dedf026c1507c"),
            std::string::npos);
}

TEST(Reporter, SafetyRejectionsCounted) {
  Reporter reporter;
  gw::FlowEvent event;
  event.kind = gw::FlowEvent::Kind::kSafetyReject;
  event.subfarm = "Botfarm";
  event.vlan = 16;
  reporter.on_flow_event(event);
  reporter.on_flow_event(event);
  const std::string report = reporter.render(util::TimePoint{});
  EXPECT_NE(report.find("Safety filter rejections: 2"), std::string::npos);
}

TEST(Reporter, TriggerAndInfectionCounters) {
  Reporter reporter;
  cs::CsEvent trigger;
  trigger.kind = cs::CsEvent::Kind::kTriggerFired;
  trigger.vlan = 16;
  reporter.on_cs_event("X", trigger);
  reporter.on_cs_event("X", trigger);
  cs::CsEvent infection;
  infection.kind = cs::CsEvent::Kind::kInfectionServed;
  infection.vlan = 16;
  reporter.on_cs_event("X", infection);
  EXPECT_EQ(reporter.trigger_firings(), 2u);
  EXPECT_EQ(reporter.infections_served(), 1u);
}

TEST(Reporter, RotationAccumulatesReports) {
  sim::EventLoop loop;
  Reporter reporter;
  reporter.enable_rotation(loop, util::hours(1));
  loop.run_for(util::hours(5) + util::minutes(1));
  EXPECT_EQ(reporter.rotated_reports().size(), 5u);
}

}  // namespace
}  // namespace gq::rep
