// Tests for the simulator TCP engine and host stack: handshake, data
// transfer, segmentation, teardown, RST behaviour, ARP resolution, UDP,
// and — critically for GQ — survival under packet loss (retransmission)
// and out-of-order delivery, since the gateway performs sequence-space
// surgery on live flows.
#include <gtest/gtest.h>

#include <string>

#include "net/stack.h"
#include "net/tcp.h"
#include "util/bytes.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "util/addr.h"

namespace gq::net {
namespace {

using util::Endpoint;
using util::Ipv4Addr;
using util::Ipv4Net;

// Two hosts wired back-to-back through a switch on one VLAN.
struct TcpFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::VlanSwitch sw{loop, "sw", 2};
  HostStack alice{loop, "alice", util::MacAddr::local(1), 111};
  HostStack bob{loop, "bob", util::MacAddr::local(2), 222};

  void SetUp() override {
    sim::Port::connect(alice.nic(), sw.port(0), util::microseconds(100));
    sim::Port::connect(bob.nic(), sw.port(1), util::microseconds(100));
    sw.set_access(0, 5);
    sw.set_access(1, 5);
    const Ipv4Net net(Ipv4Addr(10, 0, 0, 0), 24);
    alice.configure({Ipv4Addr(10, 0, 0, 1), net, Ipv4Addr(10, 0, 0, 254), {}});
    bob.configure({Ipv4Addr(10, 0, 0, 2), net, Ipv4Addr(10, 0, 0, 254), {}});
  }
};

TEST_F(TcpFixture, HandshakeEstablishes) {
  bool server_accepted = false, client_connected = false;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    server_accepted = true;
    EXPECT_EQ(conn->remote().addr, Ipv4Addr(10, 0, 0, 1));
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&] { client_connected = true; };
  loop.run_for(util::seconds(5));
  EXPECT_TRUE(server_accepted);
  EXPECT_TRUE(client_connected);
  EXPECT_EQ(conn->state(), TcpState::kEstablished);
}

TEST_F(TcpFixture, DataBothDirections) {
  std::string at_server, at_client;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data = [&, conn](std::span<const std::uint8_t> d) {
      at_server.append(reinterpret_cast<const char*>(d.data()), d.size());
      conn->send("pong");
    };
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] { conn->send("ping"); };
  conn->on_data = [&](std::span<const std::uint8_t> d) {
    at_client.append(reinterpret_cast<const char*>(d.data()), d.size());
  };
  loop.run_for(util::seconds(5));
  EXPECT_EQ(at_server, "ping");
  EXPECT_EQ(at_client, "pong");
}

TEST_F(TcpFixture, LargeTransferSegmented) {
  // 1 MB forces ~700 segments and exercises window bookkeeping.
  const std::string blob(1 << 20, 'x');
  std::string received;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
    };
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] { conn->send(blob); };
  loop.run_for(util::seconds(30));
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_EQ(received, blob);
  EXPECT_EQ(conn->bytes_sent(), blob.size());
}

TEST_F(TcpFixture, GracefulCloseBothSides) {
  bool server_saw_close = false, client_fully_closed = false,
       server_fully_closed = false;
  std::shared_ptr<TcpConnection> server_conn;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    server_conn = conn;
    conn->on_remote_close = [&, conn] {
      server_saw_close = true;
      conn->close();  // Close our side in response.
    };
    conn->on_closed = [&] { server_fully_closed = true; };
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] { conn->close(); };
  conn->on_closed = [&] { client_fully_closed = true; };
  loop.run_for(util::seconds(10));
  EXPECT_TRUE(server_saw_close);
  EXPECT_TRUE(client_fully_closed);
  EXPECT_TRUE(server_fully_closed);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST_F(TcpFixture, DataFlushedBeforeFin) {
  // close() immediately after send() must still deliver the data.
  std::string received;
  bool closed_at_server = false;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
    };
    conn->on_remote_close = [&] { closed_at_server = true; };
  });
  const std::string blob(10000, 'q');
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] {
    conn->send(blob);
    conn->close();
  };
  loop.run_for(util::seconds(10));
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_TRUE(closed_at_server);
}

TEST_F(TcpFixture, ConnectionRefusedGetsReset) {
  bool reset = false;
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 8080});  // No listener.
  conn->on_reset = [&] { reset = true; };
  loop.run_for(util::seconds(5));
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST_F(TcpFixture, AbortSendsRst) {
  bool server_reset = false;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_reset = [&] { server_reset = true; };
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] { conn->abort(); };
  loop.run_for(util::seconds(5));
  EXPECT_TRUE(server_reset);
}

TEST_F(TcpFixture, SurvivesHeavyLoss) {
  // 20% loss both directions; retransmission must still deliver all data.
  alice.nic().set_loss(0.2, 42);
  bob.nic().set_loss(0.2, 43);
  const std::string blob(100'000, 'z');
  std::string received;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
    };
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] { conn->send(blob); };
  loop.run_for(util::minutes(10));
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_EQ(received, blob);
}

TEST_F(TcpFixture, UnreachablePeerTimesOut) {
  bool reset = false;
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 99), 80});  // Nobody there.
  conn->on_reset = [&] { reset = true; };
  loop.run_for(util::minutes(5));
  EXPECT_TRUE(reset);
}

TEST_F(TcpFixture, MultipleConcurrentConnections) {
  int accepted = 0;
  std::string received;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    ++accepted;
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
    };
  });
  for (int i = 0; i < 10; ++i) {
    auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
    conn->on_connected = [conn] { conn->send("x"); };
  }
  loop.run_for(util::seconds(10));
  EXPECT_EQ(accepted, 10);
  EXPECT_EQ(received.size(), 10u);
}

TEST_F(TcpFixture, EphemeralPortsDistinct) {
  auto c1 = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  auto c2 = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  EXPECT_NE(c1->local().port, c2->local().port);
}

TEST_F(TcpFixture, UdpRoundTrip) {
  auto server = bob.udp_open(53);
  std::string question;
  server->on_datagram = [&](Endpoint from, std::vector<std::uint8_t> data) {
    question.assign(data.begin(), data.end());
    server->send_to(from, util::to_bytes("answer"));
  };
  auto client = alice.udp_open(0);
  std::string answer;
  client->on_datagram = [&](Endpoint, std::vector<std::uint8_t> data) {
    answer.assign(data.begin(), data.end());
  };
  client->send_to({Ipv4Addr(10, 0, 0, 2), 53}, util::to_bytes("query"));
  loop.run_for(util::seconds(5));
  EXPECT_EQ(question, "query");
  EXPECT_EQ(answer, "answer");
}

TEST_F(TcpFixture, IcmpEchoAnswered) {
  // Ping bob via raw ICMP through alice's stack: handled internally.
  // (The stack auto-replies; we verify via rx counters.)
  const auto rx_before = bob.ip_rx();
  auto sock = alice.udp_open(0);  // Ensure ARP warms up via any traffic.
  sock->send_to({Ipv4Addr(10, 0, 0, 2), 9}, util::to_bytes("warm"));
  loop.run_for(util::seconds(2));
  EXPECT_GT(bob.ip_rx(), rx_before);
}

TEST_F(TcpFixture, DeconfigureAbortsConnections) {
  bool closed = false;
  bob.listen(80, [](std::shared_ptr<TcpConnection>) {});
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_closed = [&] { closed = true; };
  loop.run_for(util::seconds(2));
  ASSERT_EQ(conn->state(), TcpState::kEstablished);
  alice.deconfigure();
  loop.run_for(util::seconds(1));
  EXPECT_TRUE(closed);
}

// Parameterized sweep: transfer sizes crossing segment boundaries.
class TcpTransferSweep : public TcpFixture,
                         public ::testing::WithParamInterface<std::size_t> {};

TEST_P(TcpTransferSweep, ExactDelivery) {
  const std::size_t size = GetParam();
  const std::string blob(size, 'b');
  std::string received;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
    };
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] { conn->send(blob); };
  loop.run_for(util::seconds(20));
  EXPECT_EQ(received, blob);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransferSweep,
                         ::testing::Values(0, 1, 1459, 1460, 1461, 2920,
                                           4096, 65535, 65536, 200'000));

// Loss-rate sweep: correctness must hold at any plausible loss rate.
class TcpLossSweep : public TcpFixture,
                     public ::testing::WithParamInterface<int> {};

TEST_P(TcpLossSweep, DeliversDespiteLoss) {
  const double loss = GetParam() / 100.0;
  alice.nic().set_loss(loss, 7);
  bob.nic().set_loss(loss, 8);
  const std::string blob(20'000, 'L');
  std::string received;
  bob.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data = [&](std::span<const std::uint8_t> d) {
      received.append(reinterpret_cast<const char*>(d.data()), d.size());
    };
  });
  auto conn = alice.connect({Ipv4Addr(10, 0, 0, 2), 80});
  conn->on_connected = [&, conn] { conn->send(blob); };
  loop.run_for(util::minutes(10));
  EXPECT_EQ(received, blob) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0, 1, 5, 10, 25));

}  // namespace
}  // namespace gq::net
