// Detonation-job orchestrator (DESIGN.md §13): JobSpec parsing, the
// queued → allocated → running → harvested → recycled state machine
// (with cancel, budget-exhaustion, and pool-empty backpressure
// branches), the cross-tenant isolation audit on a recycled inmate
// (post-recycle escape attempt blocked, mirroring the PR 5 post-revert
// regression), golden batch replay from archived traces, and the
// sharded DetonationService differential determinism gate.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "core/sharded_farm.h"
#include "orchestrator/job.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/service.h"
#include "trace/replay.h"
#include "trace/tap.h"
#include "util/strings.h"

namespace gq {
namespace {

using util::Ipv4Addr;

// --- JobSpec parsing -------------------------------------------------------

TEST(JobSpec, ParsesCanonicalLineAndRoundTrips) {
  const std::string line =
      "tenant=acme sample=beacon.001 budget_ms=40000 profile=standard";
  const auto spec = orch::JobSpec::parse(line);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->tenant, "acme");
  EXPECT_EQ(spec->sample, "beacon.001");
  EXPECT_EQ(spec->profile, "standard");
  EXPECT_EQ(spec->budget.usec, 40'000'000);
  EXPECT_EQ(spec->str(), line);
  EXPECT_EQ(orch::JobSpec::parse(spec->str()), spec);
}

TEST(JobSpec, ProfileDefaultsWhenOmitted) {
  const auto spec =
      orch::JobSpec::parse("tenant=t1 sample=worm.exe budget_ms=1");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->profile, orch::kDefaultProfile);
  // Tokens in any order, arbitrary whitespace runs.
  const auto shuffled = orch::JobSpec::parse(
      "  budget_ms=1\tsample=worm.exe   tenant=t1 ");
  EXPECT_EQ(shuffled, spec);
}

TEST(JobSpec, RejectsMalformedLines) {
  const char* bad[] = {
      "",                                           // Empty.
      "tenant=a sample=s",                          // Missing budget.
      "sample=s budget_ms=5",                       // Missing tenant.
      "tenant=a budget_ms=5",                       // Missing sample.
      "tenant=a sample=s budget_ms=0",              // Below kMinBudgetMs.
      "tenant=a sample=s budget_ms=86400001",       // Above kMaxBudgetMs.
      "tenant=a sample=s budget_ms=-5",             // Signed.
      "tenant=a sample=s budget_ms=5x",             // Non-numeric.
      "tenant=a sample=s budget_ms=",               // Empty value.
      "tenant=a sample=s budget_ms=5 budget_ms=6",  // Duplicate key.
      "tenant=a sample=s budget_ms=5 color=red",    // Unknown key.
      "tenant=a sample=s budget_ms=5 junk",         // Bare token.
      "tenant=bad tenant sample=s budget_ms=5",     // (Space splits; junk.)
      "tenant=a$ sample=s budget_ms=5",             // Charset violation.
      "tenant=a sample=s budget_ms=5 profile=p!",   // Charset violation.
      "tenant=a sample=with space budget_ms=5",     // Sample w/ space.
  };
  for (const char* line : bad) {
    EXPECT_FALSE(orch::JobSpec::parse(line).has_value()) << line;
  }
  // Oversized fields are rejected, not truncated.
  const std::string long_tenant(orch::kMaxTenantLen + 1, 'a');
  EXPECT_FALSE(orch::JobSpec::parse("tenant=" + long_tenant +
                                    " sample=s budget_ms=5"));
  const std::string max_tenant(orch::kMaxTenantLen, 'a');
  EXPECT_TRUE(orch::JobSpec::parse("tenant=" + max_tenant +
                                   " sample=s budget_ms=5"));
}

TEST(JobSpec, StateNamesAreStable) {
  EXPECT_STREQ(orch::job_state_name(orch::JobState::kQueued), "queued");
  EXPECT_STREQ(orch::job_state_name(orch::JobState::kRecycled), "recycled");
  EXPECT_STREQ(orch::job_state_name(orch::JobState::kRejected), "rejected");
}

// --- Orchestrator fixture --------------------------------------------------

const Ipv4Addr kWebAddr(93, 184, 216, 34);
constexpr std::uint16_t kWebPort = 80;

// Minimal periodic C&C beacon: connect to the external web host, send a
// ping, close on the echo. Jitter drawn from a forked per-infection Rng
// makes distinct seeds provably diverge (the golden-replay tests depend
// on that being non-vacuous).
class BeaconBehavior : public inm::Behavior {
 public:
  BeaconBehavior(util::Duration interval, util::Rng rng)
      : interval_(interval), rng_(rng) {}

  [[nodiscard]] std::string name() const override { return "beacon"; }

  void start(net::HostStack& host) override {
    host_ = &host;
    running_ = true;
    schedule();
  }

  void stop() override {
    running_ = false;
    conns_.clear();
  }

 private:
  void schedule() {
    const auto jitter = util::microseconds(
        static_cast<std::int64_t>(rng_.below(500'000)));
    host_->loop().schedule_in(interval_ + jitter, guarded([this] {
      if (!running_) return;
      beacon();
      schedule();
    }));
  }

  void beacon() {
    if (!host_->configured()) return;
    auto conn = host_->connect({kWebAddr, kWebPort});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak] {
      if (auto c = weak.lock()) c->send(std::string_view("beacon ping\r\n"));
    };
    conn->on_data = [weak](std::span<const std::uint8_t>) {
      if (auto c = weak.lock()) c->close();
    };
    conns_.push_back(std::move(conn));
  }

  net::HostStack* host_ = nullptr;
  bool running_ = false;
  util::Duration interval_;
  util::Rng rng_;
  std::vector<std::shared_ptr<net::TcpConnection>> conns_;
};

// Slot builder shared by every rig (single-farm, replay, and sharded):
// a catch-all sink, the beacon prototype, and a static forward-all
// containment config — the baseline `default` profile path.
void build_slot(core::Subfarm& sub, std::size_t /*slot*/) {
  sub.add_catchall_sink();
  sub.catalog().register_prototype(
      "beacon.*", [](const std::string&, util::Rng& rng) {
        return std::make_unique<BeaconBehavior>(util::seconds(5),
                                                rng.fork());
      });
  const auto& config = sub.router().config();
  sub.configure_containment(util::format(
      "[VLAN %u-%u]\nDecider = ForwardAll\n", config.vlan_first,
      config.vlan_last));
}

orch::JobSpec make_spec(const std::string& tenant, const std::string& sample,
                        std::int64_t budget_ms,
                        const std::string& profile = orch::kDefaultProfile) {
  orch::JobSpec spec;
  spec.tenant = tenant;
  spec.sample = sample;
  spec.budget = util::milliseconds(budget_ms);
  spec.profile = profile;
  return spec;
}

struct OrchRig {
  std::unique_ptr<core::Farm> farm;
  net::HostStack* web = nullptr;
  int web_accepts = 0;
  std::unique_ptr<orch::Orchestrator> orch;

  explicit OrchRig(std::uint64_t seed, std::size_t slots,
                   bool create_inmates = true, std::size_t max_queue = 0) {
    core::FarmOptions options;
    options.seed = seed;
    // Full-run inmate_rx capture must survive un-evicted (replay source).
    options.trace_archive.segment_bytes = 1 << 20;
    options.trace_archive.max_segments = 16;
    farm = std::make_unique<core::Farm>(options);

    web = &farm->add_external_host("web", kWebAddr);
    web->listen(kWebPort, [this](std::shared_ptr<net::TcpConnection> conn) {
      ++web_accepts;
      std::weak_ptr<net::TcpConnection> weak = conn;
      conn->on_data = [weak](std::span<const std::uint8_t> d) {
        if (auto c = weak.lock()) c->send(d);
      };
    });

    gq::orch::OrchestratorOptions oo;
    oo.pool.slots = slots;
    oo.pool.create_inmates = create_inmates;
    oo.max_queue = max_queue;
    oo.job_archive.segment_bytes = 1 << 20;
    oo.job_archive.max_segments = 16;
    orch = std::make_unique<gq::orch::Orchestrator>(*farm, std::move(oo),
                                                    build_slot);
    orch->register_tenant("acme");
    orch->register_tenant("umbrella");
  }

  // First boot + DHCP for every slot (kVm: 25s boot).
  void warm_up() { farm->run_for(util::minutes(2)); }

  // Step simulated seconds until `done` holds; false on timeout.
  bool run_until(const std::function<bool()>& done, int max_seconds = 900) {
    for (int i = 0; i < max_seconds; ++i) {
      if (done()) return true;
      farm->run_for(util::seconds(1));
    }
    return done();
  }

  bool job_in_state(std::uint64_t id, orch::JobState state) {
    const auto* job = orch->job(id);
    return job != nullptr && job->state == state;
  }

  std::uint64_t gauge(const std::string& name) {
    const auto* g = farm->metrics().find_gauge(name);
    return g ? static_cast<std::uint64_t>(g->value()) : 0;
  }
  std::uint64_t counter(const std::string& name) {
    const auto* c = farm->metrics().find_counter(name);
    return c ? c->value() : 0;
  }
};

// --- State machine ---------------------------------------------------------

TEST(Orchestrator, LifecycleRunsQueuedToRecycled) {
  OrchRig rig(0xA11CEull, /*slots=*/1);
  struct StateEvent {
    std::uint64_t id;
    std::string state;
  };
  std::vector<StateEvent> states;
  rig.farm->telemetry().bus().subscribe(
      obs::FarmEvent::Kind::kJobState, [&](const obs::FarmEvent& e) {
        states.push_back({e.job_id, e.job_state});
      });
  rig.warm_up();
  ASSERT_EQ(rig.orch->pool().available(), 1u);

  const auto id = rig.orch->submit(make_spec("acme", "beacon.001", 30'000));
  ASSERT_TRUE(rig.run_until(
      [&] { return rig.job_in_state(id, orch::JobState::kRecycled); }));

  // Exact transition sequence, in publication order.
  std::vector<std::string> sequence;
  for (const auto& ev : states)
    if (ev.id == id) sequence.push_back(ev.state);
  EXPECT_EQ(sequence,
            (std::vector<std::string>{"queued", "allocated", "running",
                                      "harvested", "recycled"}));

  const auto* job = rig.orch->job(id);
  ASSERT_NE(job, nullptr);
  EXPECT_LE(job->submitted.usec, job->allocated.usec);
  EXPECT_LT(job->allocated.usec, job->harvested.usec);
  EXPECT_LT(job->harvested.usec, job->recycled.usec);
  // The job detonated for real: flows decided, traffic archived, the
  // external host contacted, every verdict a FORWARD.
  EXPECT_GT(job->flows, 0u);
  EXPECT_GT(job->archived_packets, 0u);
  EXPECT_GT(rig.web_accepts, 0);
  ASSERT_EQ(job->verdicts.size(), 1u);
  EXPECT_GT(job->verdicts.at(static_cast<int>(shim::Verdict::kForward)), 0u);
  EXPECT_GT(job->bytes_to_server, 0u);

  // Bookkeeping: orchestrator counters, obs metrics, pool, reporter.
  EXPECT_EQ(rig.orch->jobs_submitted(), 1u);
  EXPECT_EQ(rig.orch->jobs_completed(), 1u);
  EXPECT_EQ(rig.orch->queue_depth(), 0u);
  EXPECT_EQ(rig.counter("orch.jobs_submitted"), 1u);
  EXPECT_EQ(rig.counter("orch.jobs_completed"), 1u);
  EXPECT_EQ(rig.gauge("orch.queue_depth"), 0u);
  EXPECT_EQ(rig.gauge("orch.jobs_running"), 0u);
  const auto* latency = rig.farm->metrics().find_histogram("orch.job_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);
  EXPECT_EQ(rig.orch->pool().total_recycles(), 1u);
  EXPECT_EQ(rig.orch->pool().available(), 1u);
  EXPECT_EQ(rig.farm->reporter().jobs_observed("acme", "recycled"), 1u);
  const auto report = rig.farm->reporter().render(rig.farm->loop().now());
  EXPECT_NE(report.find("Detonation jobs"), std::string::npos);
  EXPECT_NE(report.find("acme"), std::string::npos);
}

TEST(Orchestrator, BudgetExhaustionHarvestsExactlyAtBudget) {
  OrchRig rig(0xB0D9E7ull, /*slots=*/1);
  rig.warm_up();
  const auto id = rig.orch->submit(make_spec("acme", "beacon.001", 12'345));
  ASSERT_TRUE(rig.run_until(
      [&] { return rig.job_in_state(id, orch::JobState::kRecycled); }));
  const auto* job = rig.orch->job(id);
  ASSERT_NE(job, nullptr);
  // The budget timer is armed at allocation; simulated time makes the
  // harvest land on the budget boundary to the microsecond.
  EXPECT_EQ((job->harvested - job->allocated).usec, 12'345'000);
}

TEST(Orchestrator, CancelMidRunRecyclesSlotForNextJob) {
  OrchRig rig(0xCA9CE1ull, /*slots=*/1);
  rig.warm_up();
  // Job A would run for 10 simulated minutes; cancel it 30s in.
  const auto a = rig.orch->submit(make_spec("acme", "beacon.001", 600'000));
  rig.farm->run_for(util::seconds(30));
  ASSERT_TRUE(rig.job_in_state(a, orch::JobState::kRunning));
  EXPECT_TRUE(rig.orch->cancel(a));
  EXPECT_TRUE(rig.job_in_state(a, orch::JobState::kCancelled));
  EXPECT_EQ(rig.orch->pool().slot(0).state, orch::SlotState::kRecycling);
  // Terminal: a second cancel (and one for an unknown id) is refused.
  EXPECT_FALSE(rig.orch->cancel(a));
  EXPECT_FALSE(rig.orch->cancel(999));

  // The slot recycles and serves the next job normally.
  const auto b = rig.orch->submit(make_spec("umbrella", "beacon.002", 20'000));
  ASSERT_TRUE(rig.run_until(
      [&] { return rig.job_in_state(b, orch::JobState::kRecycled); }));
  const auto* cancelled = rig.orch->job(a);
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->state, orch::JobState::kCancelled);
  EXPECT_GT(cancelled->recycled.usec, 0);  // Its slot still recycled.
  EXPECT_GT(cancelled->archived_packets, 0u);  // Partial harvest kept.
  EXPECT_EQ(rig.orch->jobs_cancelled(), 1u);
  EXPECT_EQ(rig.orch->jobs_completed(), 1u);
  EXPECT_EQ(rig.orch->pool().total_recycles(), 2u);
  EXPECT_EQ(rig.counter("orch.jobs_cancelled"), 1u);
}

TEST(Orchestrator, CancelWhileQueuedNeverTouchesASlot) {
  OrchRig rig(0xCA9CE2ull, /*slots=*/1);
  rig.warm_up();
  const auto a = rig.orch->submit(make_spec("acme", "beacon.001", 30'000));
  const auto b = rig.orch->submit(make_spec("umbrella", "beacon.002", 30'000));
  rig.farm->run_for(util::seconds(1));
  ASSERT_TRUE(rig.job_in_state(a, orch::JobState::kRunning));
  ASSERT_TRUE(rig.job_in_state(b, orch::JobState::kQueued));
  EXPECT_TRUE(rig.orch->cancel(b));
  EXPECT_TRUE(rig.job_in_state(b, orch::JobState::kCancelled));
  EXPECT_EQ(rig.orch->queue_depth(), 0u);
  ASSERT_TRUE(rig.run_until(
      [&] { return rig.job_in_state(a, orch::JobState::kRecycled); }));
  const auto* job_b = rig.orch->job(b);
  ASSERT_NE(job_b, nullptr);
  EXPECT_EQ(job_b->vlan, 0);          // Never allocated.
  EXPECT_EQ(job_b->allocated.usec, 0);
  EXPECT_EQ(rig.orch->jobs_completed(), 1u);
  EXPECT_EQ(rig.orch->pool().total_recycles(), 1u);
}

TEST(Orchestrator, PoolEmptyBackpressureRunsJobsSequentially) {
  OrchRig rig(0xBACC9ull, /*slots=*/1);
  rig.warm_up();
  const auto a = rig.orch->submit(make_spec("acme", "beacon.001", 20'000));
  const auto b = rig.orch->submit(make_spec("umbrella", "beacon.002", 20'000));
  const auto c = rig.orch->submit(make_spec("acme", "beacon.003", 20'000));
  rig.farm->run_for(util::seconds(1));
  // One slot: A runs, B and C wait in the queue.
  EXPECT_TRUE(rig.job_in_state(a, orch::JobState::kRunning));
  EXPECT_EQ(rig.orch->queue_depth(), 2u);
  EXPECT_EQ(rig.orch->pool().available(), 0u);
  EXPECT_EQ(rig.gauge("orch.queue_depth"), 2u);

  ASSERT_TRUE(rig.run_until(
      [&] { return rig.orch->jobs_completed() == 3; }));
  const auto* ja = rig.orch->job(a);
  const auto* jb = rig.orch->job(b);
  const auto* jc = rig.orch->job(c);
  ASSERT_TRUE(ja && jb && jc);
  // Strict serialization through the single slot, with a full recycle
  // (revert + reboot) between consecutive jobs.
  EXPECT_GT(jb->allocated.usec, ja->harvested.usec);
  EXPECT_GT(jc->allocated.usec, jb->harvested.usec);
  EXPECT_EQ(rig.orch->pool().total_recycles(), 3u);
  const auto* wait = rig.farm->metrics().find_histogram("orch.queue_wait_us");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count(), 3u);
  EXPECT_GT(wait->sum(), 0.0);  // B and C actually waited.
}

TEST(Orchestrator, SubmitValidationRejectsBadTenantProfileAndOverflow) {
  OrchRig rig(0x9E9EC7ull, /*slots=*/1, /*create_inmates=*/true,
              /*max_queue=*/1);
  // No warm-up: the pool is still warming, so accepted jobs stay queued.
  const auto unknown_tenant =
      rig.orch->submit(make_spec("evilcorp", "beacon.001", 1'000));
  EXPECT_TRUE(rig.job_in_state(unknown_tenant, orch::JobState::kRejected));
  const auto unknown_profile =
      rig.orch->submit(make_spec("acme", "beacon.001", 1'000, "nonexistent"));
  EXPECT_TRUE(rig.job_in_state(unknown_profile, orch::JobState::kRejected));

  const auto queued = rig.orch->submit(make_spec("acme", "beacon.001", 1'000));
  EXPECT_TRUE(rig.job_in_state(queued, orch::JobState::kQueued));
  const auto overflow =
      rig.orch->submit(make_spec("acme", "beacon.002", 1'000));
  EXPECT_TRUE(rig.job_in_state(overflow, orch::JobState::kRejected));

  EXPECT_EQ(rig.orch->jobs_rejected(), 3u);
  EXPECT_EQ(rig.orch->jobs_submitted(), 1u);
  EXPECT_EQ(rig.counter("orch.jobs_rejected"), 3u);
  EXPECT_EQ(rig.farm->reporter().jobs_observed("evilcorp", "rejected"), 1u);
}

// --- Cross-tenant isolation audit ------------------------------------------

// Tenant-profile policies for the audit: a permissive tenant whose
// FORWARD verdicts opt into destination-endpoint caching (so the
// verdict cache demonstrably warms), and a lockdown tenant for whom
// everything is denied.
class CachedForwardPolicy : public cs::Policy {
 public:
  CachedForwardPolicy() : cs::Policy("TenantPermissive") {}
  cs::Decision decide(const cs::FlowInfo&) override {
    return cs::Decision::forward().cached(shim::CacheScope::kDstEndpoint,
                                          600'000);
  }
};

class LockdownPolicy : public cs::Policy {
 public:
  LockdownPolicy() : cs::Policy("TenantLockdown") {}
  cs::Decision decide(const cs::FlowInfo&) override {
    return cs::Decision::drop("tenant-isolation");
  }
};

TEST(Orchestrator, CrossTenantAuditOnRecycledInmate) {
  OrchRig rig(0x150A7Eull, /*slots=*/1);
  rig.orch->register_profile("permissive", [](core::Subfarm&) {
    return std::make_shared<CachedForwardPolicy>();
  });
  rig.orch->register_profile("lockdown", [](core::Subfarm&) {
    return std::make_shared<LockdownPolicy>();
  });
  rig.warm_up();
  auto* sub = rig.orch->pool().slot(0).subfarm;
  ASSERT_NE(sub, nullptr);

  // Tenant A (acme, permissive): beacons are forwarded and the verdicts
  // cached against the slot's VLAN.
  const auto a = rig.orch->submit(
      make_spec("acme", "beacon.001", 30'000, "permissive"));
  rig.farm->run_for(util::seconds(20));
  ASSERT_TRUE(rig.job_in_state(a, orch::JobState::kRunning));
  const auto vlan = rig.orch->job(a)->vlan;
  EXPECT_GT(rig.web_accepts, 0);
  EXPECT_GE(sub->router().verdict_cache().size(), 1u);
  ASSERT_NE(sub->router().inmates().by_vlan(vlan), nullptr);

  // Drive to the harvest instant: the recycle must already have flushed
  // the VLAN's cached verdicts and released its NAT binding — no state
  // from tenant A's job survives into the revert window.
  ASSERT_TRUE(rig.run_until(
      [&] { return rig.job_in_state(a, orch::JobState::kHarvested); }));
  EXPECT_EQ(sub->router().verdict_cache().size(), 0u);
  EXPECT_EQ(sub->router().inmates().by_vlan(vlan), nullptr);

  ASSERT_TRUE(rig.run_until(
      [&] { return rig.job_in_state(a, orch::JobState::kRecycled); }));
  // The rebooted inmate DHCPs a fresh binding for the next tenant.
  ASSERT_NE(sub->router().inmates().by_vlan(vlan), nullptr);
  const auto* job_a = rig.orch->job(a);
  const auto a_archived = job_a->archived_packets;
  ASSERT_GT(a_archived, 0u);
  EXPECT_EQ(job_a->verdicts.count(static_cast<int>(shim::Verdict::kDrop)),
            0u);
  const int accepts_after_a = rig.web_accepts;

  // Tenant B (umbrella, lockdown) on the recycled inmate: every escape
  // attempt must be denied at the gateway — the upstream host sees
  // nothing, and no cached FORWARD from tenant A leaks through
  // (mirroring the PR 5 post-revert escape regression).
  const auto b = rig.orch->submit(
      make_spec("umbrella", "beacon.002", 30'000, "lockdown"));
  ASSERT_TRUE(rig.run_until(
      [&] { return rig.job_in_state(b, orch::JobState::kRecycled); }));
  const auto* job_b = rig.orch->job(b);
  ASSERT_NE(job_b, nullptr);
  EXPECT_EQ(rig.web_accepts, accepts_after_a);
  EXPECT_GT(job_b->flows, 0u);
  ASSERT_EQ(job_b->verdicts.size(), 1u);
  EXPECT_GT(job_b->verdicts.at(static_cast<int>(shim::Verdict::kDrop)), 0u);
  EXPECT_EQ(sub->router().verdict_cache().size(), 0u);

  // Archive isolation: B's archive holds only B-window traffic, and
  // nothing was appended to A's archive after its harvest.
  EXPECT_EQ(job_a->archive->packet_count(), a_archived);
  ASSERT_GT(job_b->archived_packets, 0u);
  for (const auto& record : job_b->archive->archive().records()) {
    EXPECT_GE(record.time.usec, job_b->allocated.usec);
    EXPECT_LE(record.time.usec, job_b->harvested.usec);
  }

  EXPECT_EQ(rig.farm->reporter().jobs_observed("acme", "recycled"), 1u);
  EXPECT_EQ(rig.farm->reporter().jobs_observed("umbrella", "recycled"), 1u);
}

// --- Golden batch replay ---------------------------------------------------

constexpr auto kBatchWarm = util::seconds(120);
constexpr auto kBatchRun = util::seconds(360);

struct BatchLog {
  std::vector<std::string> verdict_lines;  // Canonical kFlowVerdict lines.
  std::vector<std::uint8_t> upstream;      // Upstream egress capture.
  std::vector<pkt::PcapRecord> inmate_rx;  // Replay source.
  std::vector<std::array<std::int64_t, 2>> windows;  // [allocated,harvested].
  std::uint64_t completed = 0;
};

// Per-job slice of a verdict-line stream by the job's live window
// (event lines lead with the timestamp in microseconds).
std::vector<std::string> window_slice(
    const std::vector<std::string>& lines,
    const std::array<std::int64_t, 2>& window) {
  std::vector<std::string> out;
  for (const auto& line : lines) {
    const auto usec = std::stoll(line);
    if (usec >= window[0] && usec <= window[1]) out.push_back(line);
  }
  return out;
}

BatchLog record_batch(std::uint64_t seed, bool check_archives) {
  OrchRig rig(seed, /*slots=*/2);
  std::vector<std::string> verdicts;
  rig.farm->telemetry().bus().subscribe(
      obs::FarmEvent::Kind::kFlowVerdict, [&](const obs::FarmEvent& e) {
        verdicts.push_back(trace::event_line(e));
      });
  rig.farm->run_for(kBatchWarm);
  std::vector<std::uint64_t> ids;
  ids.push_back(rig.orch->submit(make_spec("acme", "beacon.001", 20'000)));
  ids.push_back(rig.orch->submit(make_spec("umbrella", "beacon.002", 25'000)));
  // Third job outnumbers the slots: it waits for a recycle, so the
  // replayed stream also covers the backpressure path.
  ids.push_back(rig.orch->submit(make_spec("acme", "beacon.003", 30'000)));
  rig.farm->run_for(kBatchRun);

  BatchLog log;
  log.verdict_lines = std::move(verdicts);
  log.completed = rig.orch->jobs_completed();
  log.upstream = rig.farm->gateway().upstream_trace().contents();
  log.inmate_rx = rig.farm->gateway().inmate_rx_trace().archive().records();

  const std::string dir = util::format("orch_golden_%llu",
                                       static_cast<unsigned long long>(seed));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  for (const auto id : ids) {
    const auto* job = rig.orch->job(id);
    EXPECT_EQ(job->state, orch::JobState::kRecycled) << "job " << id;
    log.windows.push_back({job->allocated.usec, job->harvested.usec});
    if (!check_archives) continue;
    // The archived batch round-trips through the on-disk format and
    // contains only the job's own window.
    EXPECT_GT(job->archived_packets, 0u);
    for (const auto& record : job->archive->archive().records()) {
      EXPECT_GE(record.time.usec, job->allocated.usec);
      EXPECT_LE(record.time.usec, job->harvested.usec);
    }
    const auto subdir = util::format(
        "%s/job-%llu", dir.c_str(), static_cast<unsigned long long>(id));
    EXPECT_TRUE(job->archive->save(subdir));
    auto loaded = trace::load_trace(subdir);
    EXPECT_TRUE(loaded.has_value());
    if (loaded.has_value()) {
      EXPECT_EQ(loaded->contents(), job->archive->contents());
      EXPECT_EQ(loaded->packet_count(), job->archived_packets);
    }
  }
  std::filesystem::remove_all(dir, ec);
  return log;
}

// Replay the recorded inmate ingress into an identically constructed
// but inmate-less rig (trace/replay.h contract: inmates are created
// last, so the construction-time RNG draws all line up). No jobs are
// submitted — the gateway pipeline alone must reproduce the batch.
BatchLog replay_batch(std::uint64_t seed,
                      const std::vector<pkt::PcapRecord>& records) {
  OrchRig rig(seed, /*slots=*/2, /*create_inmates=*/false);
  std::vector<std::string> verdicts;
  rig.farm->telemetry().bus().subscribe(
      obs::FarmEvent::Kind::kFlowVerdict, [&](const obs::FarmEvent& e) {
        verdicts.push_back(trace::event_line(e));
      });
  const auto scheduled = trace::schedule_replay(rig.farm->gateway(), records);
  EXPECT_EQ(scheduled, records.size());
  rig.farm->run_for(kBatchWarm + kBatchRun);

  BatchLog log;
  log.verdict_lines = std::move(verdicts);
  log.upstream = rig.farm->gateway().upstream_trace().contents();
  return log;
}

class OrchestratorReplay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrchestratorReplay, ArchivedBatchReplaysBitIdentically) {
  const auto seed = GetParam();
  const auto live = record_batch(seed, /*check_archives=*/true);
  ASSERT_EQ(live.completed, 3u);
  ASSERT_FALSE(live.verdict_lines.empty());
  ASSERT_FALSE(live.inmate_rx.empty());

  const auto replayed = replay_batch(seed, live.inmate_rx);
  EXPECT_EQ(replayed.verdict_lines, live.verdict_lines)
      << "verdict event stream diverged";
  EXPECT_EQ(replayed.upstream, live.upstream) << "upstream egress diverged";

  // Per-job verdict events, bit-identical within each job's window.
  for (const auto& window : live.windows) {
    const auto live_slice = window_slice(live.verdict_lines, window);
    const auto replay_slice = window_slice(replayed.verdict_lines, window);
    EXPECT_FALSE(live_slice.empty());
    EXPECT_EQ(replay_slice, live_slice);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrchestratorReplay,
                         ::testing::Values(0xDE70A7Eull, 0xF00DFACEull));

// The two seeds above provably diverge — the golden comparison is not
// vacuously passing on identical streams.
TEST(OrchestratorReplay, DistinctSeedsDiverge) {
  const auto a = record_batch(0xDE70A7Eull, /*check_archives=*/false);
  const auto b = record_batch(0xF00DFACEull, /*check_archives=*/false);
  EXPECT_NE(a.verdict_lines, b.verdict_lines);
}

// --- Sharded DetonationService ---------------------------------------------

struct ServiceResult {
  std::string joined;
  std::uint64_t completed = 0;
  unsigned threads = 0;
};

ServiceResult run_service(std::uint64_t seed, unsigned threads) {
  core::ShardedFarmOptions options;
  options.shards = 2;
  options.threads = threads;
  options.seed = seed;
  options.trace_archive.segment_bytes = 1 << 20;
  options.trace_archive.max_segments = 16;
  core::ShardedFarm farm(options, [](core::Farm&, std::size_t) {});

  // One web host homed on shard 0; shard 1's inmates reach it across
  // the bridged external segment (the shard_test C&C pattern).
  auto& web = farm.shard(0).add_external_host("web", kWebAddr);
  web.listen(kWebPort, [](std::shared_ptr<net::TcpConnection> conn) {
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_data = [weak](std::span<const std::uint8_t> d) {
      if (auto c = weak.lock()) c->send(d);
    };
  });

  gq::orch::OrchestratorOptions oo;
  oo.pool.slots = 2;
  oo.job_archive.segment_bytes = 1 << 20;
  oo.job_archive.max_segments = 16;
  gq::orch::DetonationService service(farm, oo, build_slot);
  service.register_tenant("acme");
  service.register_tenant("umbrella");
  for (int i = 0; i < 8; ++i) {
    service.submit(make_spec(i % 2 ? "umbrella" : "acme",
                             util::format("beacon.%03d", i),
                             20'000 + 1'000 * i));
  }
  farm.run_for(util::seconds(600));

  ServiceResult result;
  for (const auto& line : farm.merged_event_lines()) {
    result.joined += line;
    result.joined += '\n';
  }
  result.completed = service.jobs_completed();
  result.threads = farm.threads();
  return result;
}

TEST(DetonationService, SerialAndParallelStreamsAreBitIdentical) {
  const auto serial = run_service(0x5EEDull, 1);
  EXPECT_EQ(serial.threads, 1u);
  ASSERT_EQ(serial.completed, 8u);
  ASSERT_FALSE(serial.joined.empty());

  const auto parallel = run_service(0x5EEDull, 2);
  EXPECT_EQ(parallel.threads, 2u);
  EXPECT_EQ(parallel.completed, 8u);
  EXPECT_EQ(parallel.joined, serial.joined)
      << "job scheduling diverged across worker-thread counts";

  const auto other = run_service(0x0DDBA11ull, 1);
  EXPECT_NE(other.joined, serial.joined);
}

}  // namespace
}  // namespace gq
