// Unit tests of the observability layer: the metrics registry
// (counter/gauge/histogram semantics, text and JSON export) and the
// structured event bus (multi-subscriber dispatch, ordering, kind
// filtering, unsubscription) plus the Telemetry facade that couples
// them, and an end-to-end check that link-fault counters and the
// gateway's fail-closed/retry instruments surface through a real farm.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "inmate/inmate.h"
#include "orchestrator/pool.h"
#include "netsim/fault.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace gq::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, MovesBothWays) {
  Gauge gauge;
  gauge.set(10);
  gauge.add(5);
  gauge.sub(20);
  EXPECT_EQ(gauge.value(), -5);
}

TEST(Histogram, BucketsCountAndSum) {
  Histogram hist({10.0, 100.0, 1000.0});
  hist.observe(5.0);     // <= 10
  hist.observe(10.0);    // <= 10 (inclusive edge)
  hist.observe(50.0);    // <= 100
  hist.observe(5000.0);  // +inf tail
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 5065.0);
  ASSERT_EQ(hist.bucket_counts().size(), 4u);
  EXPECT_EQ(hist.bucket_counts()[0], 2u);
  EXPECT_EQ(hist.bucket_counts()[1], 1u);
  EXPECT_EQ(hist.bucket_counts()[2], 0u);
  EXPECT_EQ(hist.bucket_counts()[3], 1u);
  EXPECT_DOUBLE_EQ(hist.mean(), 5065.0 / 4.0);
}

TEST(Histogram, QuantileEstimate) {
  Histogram hist({10.0, 20.0});
  for (int i = 0; i < 10; ++i) hist.observe(5.0);
  // All mass in the first bucket: the median falls inside [0, 10].
  const double median = hist.quantile(0.5);
  EXPECT_GE(median, 0.0);
  EXPECT_LE(median, 10.0);
}

TEST(MetricsRegistry, InstrumentsHaveStableAddresses) {
  MetricsRegistry registry;
  Counter& a = registry.counter("gw.test.flows");
  a.inc();
  // Creating more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i)
    registry.counter("gw.test.other_" + std::to_string(i));
  Counter& b = registry.counter("gw.test.flows");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
  registry.counter("present").inc(3);
  ASSERT_NE(registry.find_counter("present"), nullptr);
  EXPECT_EQ(registry.find_counter("present")->value(), 3u);
}

TEST(MetricsRegistry, JsonExportShape) {
  MetricsRegistry registry;
  registry.counter("cs.default.decisions").inc(7);
  registry.gauge("gw.default.active_flows").set(3);
  registry.histogram("gw.default.latency_us", {100.0, 1000.0}).observe(50.0);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"cs.default.decisions\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"gw.default.active_flows\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
  EXPECT_NE(json.find("+inf"), std::string::npos);
}

TEST(MetricsRegistry, TextExportListsInstruments) {
  MetricsRegistry registry;
  registry.counter("b.second").inc(2);
  registry.counter("a.first").inc(1);
  const std::string text = registry.render_text();
  const auto a = text.find("a.first");
  const auto b = text.find("b.second");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);  // Sorted by name.
}

TEST(EventBus, DispatchesToAllSubscribersInOrder) {
  EventBus bus;
  std::vector<std::string> calls;
  bus.subscribe([&](const FarmEvent&) { calls.push_back("first"); });
  bus.subscribe([&](const FarmEvent&) { calls.push_back("second"); });
  bus.subscribe([&](const FarmEvent&) { calls.push_back("third"); });
  FarmEvent event;
  event.kind = FarmEvent::Kind::kFlowVerdict;
  bus.publish(event);
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0], "first");
  EXPECT_EQ(calls[1], "second");
  EXPECT_EQ(calls[2], "third");
  EXPECT_EQ(bus.published(), 1u);
}

TEST(EventBus, KindFilteredSubscription) {
  EventBus bus;
  int triggers = 0, all = 0;
  bus.subscribe(FarmEvent::Kind::kTriggerFired,
                [&](const FarmEvent&) { ++triggers; });
  bus.subscribe([&](const FarmEvent&) { ++all; });
  FarmEvent verdict;
  verdict.kind = FarmEvent::Kind::kFlowVerdict;
  FarmEvent trigger;
  trigger.kind = FarmEvent::Kind::kTriggerFired;
  bus.publish(verdict);
  bus.publish(trigger);
  EXPECT_EQ(triggers, 1);
  EXPECT_EQ(all, 2);
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  EventBus bus;
  int count = 0;
  const auto id = bus.subscribe([&](const FarmEvent&) { ++count; });
  FarmEvent event;
  bus.publish(event);
  bus.unsubscribe(id);
  bus.publish(event);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(EventBus, EventCarriesTypedLimitParameter) {
  EventBus bus;
  std::optional<std::int64_t> seen;
  bus.subscribe([&](const FarmEvent& event) {
    seen = event.limit_bytes_per_sec;
  });
  FarmEvent event;
  event.kind = FarmEvent::Kind::kFlowVerdict;
  event.verdict = shim::Verdict::kLimit;
  event.limit_bytes_per_sec = 4096;
  bus.publish(event);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, 4096);
}

TEST(FarmEventKinds, AllNamed) {
  EXPECT_STREQ(farm_event_kind_name(FarmEvent::Kind::kFlowVerdict),
               "flow_verdict");
  EXPECT_STREQ(farm_event_kind_name(FarmEvent::Kind::kTriggerFired),
               "trigger_fired");
  EXPECT_STREQ(farm_event_kind_name(FarmEvent::Kind::kSinkSession),
               "sink_session");
}

TEST(Telemetry, PublishCountsPerKind) {
  Telemetry telemetry;
  int delivered = 0;
  telemetry.bus().subscribe([&](const FarmEvent&) { ++delivered; });
  FarmEvent event;
  event.kind = FarmEvent::Kind::kSafetyReject;
  telemetry.publish(event);
  telemetry.publish(event);
  EXPECT_EQ(delivered, 2);
  const auto* counter =
      telemetry.metrics().find_counter("obs.events.safety_reject");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 2u);
}

// --- End-to-end: fault + fail-closed instrumentation through a farm ------

TEST(FarmObservability, LossyCsLinkExposesFaultAndRetryMetrics) {
  core::Farm farm;
  auto& echo = farm.add_external_host("echo", util::Ipv4Addr(198, 51, 100, 9));
  echo.listen(7777, [](std::shared_ptr<net::TcpConnection> conn) {
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_data = [weak](std::span<const std::uint8_t> data) {
      if (auto c = weak.lock()) c->send(data);
    };
  });

  auto& sub = farm.add_subfarm("Obs");
  class ForwardAll : public cs::Policy {
   public:
    ForwardAll() : cs::Policy("ForwardAll") {}
    cs::Decision decide(const cs::FlowInfo&) override {
      return cs::Decision::forward();
    }
  };
  sub.bind_policy(sub.router().config().vlan_first,
                  sub.router().config().vlan_last,
                  std::make_shared<ForwardAll>());
  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);

  // A 35%-lossy management link between gateway and containment server:
  // shims get lost both ways, so the gateway's retransmit machinery has
  // to carry the verdict path.
  sim::FaultProfile lossy;
  lossy.drop_probability = 0.35;
  farm.set_link_faults(sub.containment_host().nic(), lossy);

  farm.run_for(util::minutes(1));  // Boot + DHCP.
  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  for (int i = 0; i < 10; ++i) {
    farm.loop().schedule_in(util::seconds(2 * i), [&farm, &inmate, &conns] {
      if (!inmate.host().configured()) return;
      auto conn = inmate.host().connect({util::Ipv4Addr(198, 51, 100, 9),
                                         7777});
      std::weak_ptr<net::TcpConnection> weak = conn;
      conn->on_connected = [weak] {
        if (auto c = weak.lock()) c->send(std::string_view("ping\r\n"));
      };
      conns.push_back(std::move(conn));
    });
  }
  farm.run_for(util::minutes(4));

  const auto& metrics = farm.metrics();
  // The impaired link's fault counters surfaced under net.fault.<port>.,
  // for both directions of the link.
  const auto& cs_nic = sub.containment_host().nic();
  const auto* nic_drops =
      metrics.find_counter("net.fault." + cs_nic.name() + ".dropped");
  ASSERT_NE(nic_drops, nullptr);
  const auto* peer_drops = metrics.find_counter(
      "net.fault." + cs_nic.peer()->name() + ".dropped");
  ASSERT_NE(peer_drops, nullptr);
  EXPECT_GT(nic_drops->value() + peer_drops->value(), 0u);

  // The gateway's verdict-resolution instruments are live: shims were
  // retried on the lossy link, and every pending verdict was resolved
  // one way or the other — the pending gauge always returns to zero.
  const auto* retries = metrics.find_counter("gw.Obs.shim_retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value(), 0u);
  ASSERT_NE(metrics.find_counter("gw.Obs.fail_closed"), nullptr);
  ASSERT_NE(metrics.find_counter("gw.Obs.verdict_timeouts"), nullptr);
  const auto* pending = metrics.find_gauge("gw.Obs.pending_verdicts");
  ASSERT_NE(pending, nullptr);
  EXPECT_EQ(pending->value(), 0);

  // Despite the loss, verdicts did land (retries carried them through).
  auto totals = farm.reporter().verdict_totals();
  EXPECT_GE(totals[shim::Verdict::kForward], 1u);
}

TEST(FarmObservability, InmatePoolInstrumentsTrackSlotRecycling) {
  // The fleet-bookkeeping instruments the detonation service runs on:
  // `inmate.pool.available` (VlanPool occupancy), `inmate.pool.recycling`
  // (slots mid-revert), and `inmate.pool.reimages` (RawIronController
  // restore cycles) must all surface through the farm registry and move
  // with the slot life-cycle.
  core::Farm farm;
  orch::PoolOptions options;
  options.slots = 1;
  options.hosting = inm::HostingKind::kRawIron;  // Recycle = PXE reimage.
  orch::InmatePool pool(farm, options,
                        [](core::Subfarm& sub, std::size_t) {
                          sub.add_catchall_sink();
                        });

  const auto& metrics = farm.metrics();
  const auto* available = metrics.find_gauge("inmate.pool.available");
  const auto* recycling = metrics.find_gauge("inmate.pool.recycling");
  const auto* reimages = metrics.find_counter("inmate.pool.reimages");
  ASSERT_NE(available, nullptr);
  ASSERT_NE(recycling, nullptr);
  ASSERT_NE(reimages, nullptr);

  // One inmate exists, so exactly one VLAN is drawn from the pool; no
  // slot is recycling and no reimage has run yet.
  const auto capacity = static_cast<std::int64_t>(
      pool.slot(0).subfarm->vlan_pool().capacity());
  EXPECT_EQ(available->value(), capacity - 1);
  EXPECT_EQ(recycling->value(), 0);
  EXPECT_EQ(reimages->value(), 0u);

  // Warm up (45s raw-iron boot + DHCP), lease the slot, recycle it.
  farm.run_for(util::minutes(2));
  orch::PoolSlot* slot = pool.acquire();
  ASSERT_NE(slot, nullptr);
  pool.recycle(*slot);
  EXPECT_EQ(recycling->value(), 1);
  EXPECT_EQ(reimages->value(), 1u);

  // The ~6-minute restore completes: the slot re-enters the pool and
  // the recycling gauge returns to zero; the inmate keeps its VLAN, so
  // available is unchanged.
  farm.run_for(util::minutes(10));
  EXPECT_EQ(recycling->value(), 0);
  EXPECT_EQ(slot->state, orch::SlotState::kAvailable);
  EXPECT_EQ(available->value(), capacity - 1);
  EXPECT_EQ(pool.total_recycles(), 1u);
  EXPECT_EQ(pool.raw_iron().reimages(), 1u);
}

}  // namespace
}  // namespace gq::obs
