// Tests for the sink servers: the catch-all sink's flow capture, and
// the fidelity-adjustable SMTP sink's protocol engine (strict/lenient),
// probabilistic drops, banner grabbing, and per-source accounting.
#include <gtest/gtest.h>

#include "net/stack.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "sinks/catchall.h"
#include "sinks/smtp_sink.h"
#include "util/bytes.h"

namespace gq::sinks {
namespace {

using util::Endpoint;
using util::Ipv4Addr;
using util::Ipv4Net;

struct SinkFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::VlanSwitch sw{loop, "sw", 4};
  net::HostStack sink_host{loop, "sink", util::MacAddr::local(1), 1};
  net::HostStack bot{loop, "bot", util::MacAddr::local(2), 2};
  net::HostStack other{loop, "other", util::MacAddr::local(3), 3};

  void SetUp() override {
    for (int i = 0; i < 4; ++i) sw.set_access(i, 7);
    sim::Port::connect(sink_host.nic(), sw.port(0), util::microseconds(20));
    sim::Port::connect(bot.nic(), sw.port(1), util::microseconds(20));
    sim::Port::connect(other.nic(), sw.port(2), util::microseconds(20));
    const Ipv4Net net(Ipv4Addr(10, 5, 0, 0), 24);
    sink_host.configure({Ipv4Addr(10, 5, 0, 1), net, {}, {}});
    bot.configure({Ipv4Addr(10, 5, 0, 2), net, {}, {}});
    other.configure({Ipv4Addr(10, 5, 0, 3), net, {}, {}});
  }

  // Runs a scripted SMTP exchange; returns all server lines received.
  std::string run_smtp_script(std::uint16_t port,
                              std::vector<std::string> commands,
                              util::Duration duration = util::seconds(30)) {
    auto conn = bot.connect({Ipv4Addr(10, 5, 0, 1), port});
    auto received = std::make_shared<std::string>();
    auto cursor = std::make_shared<std::size_t>(0);
    auto cmds = std::make_shared<std::vector<std::string>>(
        std::move(commands));
    conn->on_data = [conn, received, cursor,
                     cmds](std::span<const std::uint8_t> d) {
      received->append(reinterpret_cast<const char*>(d.data()), d.size());
      // Send the next command after each complete server line.
      while (received->find("\r\n") != std::string::npos &&
             *cursor < cmds->size()) {
        const auto lines = std::count(received->begin(), received->end(),
                                      '\n');
        if (static_cast<std::size_t>(lines) <= *cursor) break;
        conn->send((*cmds)[*cursor] + "\r\n");
        ++(*cursor);
      }
    };
    loop.run_for(duration);
    return *received;
  }
};

TEST_F(SinkFixture, CatchAllRecordsTcpAndUdp) {
  CatchAllSink sink(sink_host, 9999);
  auto conn = bot.connect({Ipv4Addr(10, 5, 0, 1), 9999});
  conn->on_connected = [conn] { conn->send("GET /evil HTTP/1.1\r\n"); };
  auto udp = bot.udp_open(0);
  udp->send_to({Ipv4Addr(10, 5, 0, 1), 9999}, util::to_bytes("beacon"));
  loop.run_for(util::seconds(5));

  EXPECT_EQ(sink.tcp_flows(), 1u);
  EXPECT_EQ(sink.udp_datagrams(), 1u);
  ASSERT_EQ(sink.records().size(), 2u);
  bool saw_http = false, saw_beacon = false;
  for (const auto& record : sink.records()) {
    if (record.first_bytes.find("GET /evil") != std::string::npos)
      saw_http = true;
    if (record.first_bytes == "beacon") saw_beacon = true;
  }
  EXPECT_TRUE(saw_http);
  EXPECT_TRUE(saw_beacon);
}

TEST_F(SinkFixture, CatchAllNeverResponds) {
  CatchAllSink sink(sink_host, 9999);
  auto conn = bot.connect({Ipv4Addr(10, 5, 0, 1), 9999});
  auto got_data = std::make_shared<bool>(false);
  conn->on_connected = [conn] { conn->send("anyone there?\r\n"); };
  conn->on_data = [got_data](std::span<const std::uint8_t>) {
    *got_data = true;
  };
  loop.run_for(util::seconds(10));
  EXPECT_FALSE(*got_data);
}

TEST_F(SinkFixture, CatchAllCapturesBoundedPrefix) {
  CatchAllSink sink(sink_host, 9999, /*capture_limit=*/16);
  auto conn = bot.connect({Ipv4Addr(10, 5, 0, 1), 9999});
  conn->on_connected = [conn] { conn->send(std::string(1000, 'A')); };
  loop.run_for(util::seconds(5));
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].first_bytes.size(), 16u);
}

TEST_F(SinkFixture, SmtpLenientFullTransaction) {
  SmtpSinkConfig config;
  config.port = 2526;
  SmtpSink sink(sink_host, config);
  run_smtp_script(2526, {
    "HELO spammer",
    "MAIL FROM:<bot@evil.example>",
    "RCPT TO:<victim@example.com>",
    "DATA",
    "Subject: spam\r\n\r\nbuy stuff\r\n.",
    "QUIT",
  });
  EXPECT_EQ(sink.sessions(), 1u);
  EXPECT_EQ(sink.data_transfers(), 1u);
  ASSERT_EQ(sink.harvest().size(), 1u);
  const auto& message = sink.harvest()[0];
  EXPECT_EQ(message.helo, "spammer");
  EXPECT_EQ(message.mail_from, "bot@evil.example");
  ASSERT_EQ(message.rcpt_to.size(), 1u);
  EXPECT_EQ(message.rcpt_to[0], "victim@example.com");
  EXPECT_NE(message.data.find("buy stuff"), std::string::npos);
}

TEST_F(SinkFixture, SmtpLenientToleratesBotGrammar) {
  // §7.1 "protocol violations": repeated HELOs, colon-less/bracket-less
  // addresses — the lenient engine must still reach DATA.
  SmtpSinkConfig config;
  config.port = 2526;
  config.strict_protocol = false;
  SmtpSink sink(sink_host, config);
  run_smtp_script(2526, {
    "HELO wergvan",
    "HELO wergvan",
    "MAIL FROM bot@evil.example",
    "RCPT TO victim@example.com",
    "DATA",
    "spam body\r\n.",
    "QUIT",
  });
  EXPECT_EQ(sink.data_transfers(), 1u);
  ASSERT_EQ(sink.harvest().size(), 1u);
  EXPECT_EQ(sink.harvest()[0].mail_from, "bot@evil.example");
}

TEST_F(SinkFixture, SmtpStrictNeverReachesData) {
  // The same bot dialogue against the strict engine: the repeated HELO
  // draws a 503 and the malformed MAIL a 501 — zero DATA transfers,
  // exactly the paper's "healthy at the connection level, meager at the
  // content level".
  SmtpSinkConfig config;
  config.port = 2526;
  config.strict_protocol = true;
  SmtpSink sink(sink_host, config);
  const std::string transcript = run_smtp_script(2526, {
    "HELO wergvan",
    "HELO wergvan",
    "MAIL FROM bot@evil.example",
    "RCPT TO victim@example.com",
    "DATA",
    "spam body\r\n.",
    "QUIT",
  });
  EXPECT_EQ(sink.sessions(), 1u);
  EXPECT_EQ(sink.data_transfers(), 0u);
  EXPECT_NE(transcript.find("503"), std::string::npos);
}

TEST_F(SinkFixture, SmtpStrictAcceptsCleanDialogue) {
  SmtpSinkConfig config;
  config.port = 2526;
  config.strict_protocol = true;
  SmtpSink sink(sink_host, config);
  run_smtp_script(2526, {
    "EHLO clean.example",
    "MAIL FROM:<a@b.example>",
    "RCPT TO:<c@d.example>",
    "DATA",
    "ok\r\n.",
    "QUIT",
  });
  EXPECT_EQ(sink.data_transfers(), 1u);
}

TEST_F(SinkFixture, ProbabilisticDropsReduceSessions) {
  SmtpSinkConfig config;
  config.port = 2526;
  config.drop_probability = 0.5;
  config.seed = 99;
  SmtpSink sink(sink_host, config);
  int resets = 0;
  for (int i = 0; i < 40; ++i) {
    auto conn = bot.connect({Ipv4Addr(10, 5, 0, 1), 2526});
    conn->on_reset = [&] { ++resets; };
  }
  loop.run_for(util::seconds(30));
  // Figure 7: REFLECTed flows exceed SMTP sessions because of the drops.
  EXPECT_GT(sink.dropped_connections(), 5u);
  EXPECT_GT(sink.sessions(), 5u);
  EXPECT_EQ(sink.sessions() + sink.dropped_connections(), 40u);
  EXPECT_EQ(static_cast<std::uint64_t>(resets),
            sink.dropped_connections());
}

TEST_F(SinkFixture, BannerGrabbingFetchesRealGreeting) {
  // A "real" SMTP server with a distinctive banner on `other`.
  other.listen(25, [](std::shared_ptr<net::TcpConnection> conn) {
    conn->send("220 mx.真google.example ESMTP gsmtp\r\n");
  });
  SmtpSinkConfig config;
  config.port = 2526;
  config.banner_grabbing = true;
  SmtpSink sink(sink_host, config);
  sink.add_destination_hint(Ipv4Addr(10, 5, 0, 2),
                            {Ipv4Addr(10, 5, 0, 3), 25});

  const std::string transcript = run_smtp_script(2526, {"QUIT"});
  EXPECT_NE(transcript.find("gsmtp"), std::string::npos);
  EXPECT_EQ(sink.banners_grabbed(), 1u);
}

TEST_F(SinkFixture, BannerGrabbingFallsBackWithoutHint) {
  SmtpSinkConfig config;
  config.port = 2526;
  config.banner_grabbing = true;
  config.static_banner = "220 fallback ESMTP";
  SmtpSink sink(sink_host, config);
  const std::string transcript = run_smtp_script(2526, {"QUIT"});
  EXPECT_NE(transcript.find("fallback"), std::string::npos);
  EXPECT_EQ(sink.banners_grabbed(), 0u);
}

TEST_F(SinkFixture, HintChannelParsesDatagrams) {
  SmtpSinkConfig config;
  config.port = 2526;
  config.hint_port = 2527;
  config.banner_grabbing = true;
  SmtpSink sink(sink_host, config);
  auto sock = bot.udp_open(0);
  sock->send_to({Ipv4Addr(10, 5, 0, 1), 2527},
                util::to_bytes("10.5.0.2 10.5.0.3:25\n"));
  other.listen(25, [](std::shared_ptr<net::TcpConnection> conn) {
    conn->send("220 hinted ESMTP\r\n");
  });
  loop.run_for(util::seconds(2));
  const std::string transcript = run_smtp_script(2526, {"QUIT"});
  EXPECT_NE(transcript.find("hinted"), std::string::npos);
}

TEST_F(SinkFixture, PerSourceAccounting) {
  SmtpSinkConfig config;
  config.port = 2526;
  SmtpSink sink(sink_host, config);
  // Two sessions from bot, one from other.
  for (int i = 0; i < 2; ++i) {
    auto conn = bot.connect({Ipv4Addr(10, 5, 0, 1), 2526});
    conn->on_data = [conn](std::span<const std::uint8_t>) { conn->close(); };
  }
  auto conn = other.connect({Ipv4Addr(10, 5, 0, 1), 2526});
  conn->on_data = [conn](std::span<const std::uint8_t>) { conn->close(); };
  loop.run_for(util::seconds(10));
  const auto& by_source = sink.by_source();
  ASSERT_EQ(by_source.size(), 2u);
  EXPECT_EQ(by_source.at(Ipv4Addr(10, 5, 0, 2)).sessions, 2u);
  EXPECT_EQ(by_source.at(Ipv4Addr(10, 5, 0, 3)).sessions, 1u);
}

TEST_F(SinkFixture, RsetResetsTransaction) {
  SmtpSinkConfig config;
  config.port = 2526;
  SmtpSink sink(sink_host, config);
  run_smtp_script(2526, {
    "HELO x",
    "MAIL FROM:<a@b>",
    "RSET",
    "MAIL FROM:<c@d>",
    "RCPT TO:<e@f>",
    "DATA",
    "body\r\n.",
    "QUIT",
  });
  ASSERT_EQ(sink.harvest().size(), 1u);
  EXPECT_EQ(sink.harvest()[0].mail_from, "c@d");
}

}  // namespace
}  // namespace gq::sinks
