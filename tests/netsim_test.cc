// Unit tests for src/netsim: event-loop ordering and cancellation, port
// links, and the learning VLAN switch's isolation guarantees.
#include <gtest/gtest.h>

#include "netsim/event_loop.h"
#include "netsim/port.h"
#include "netsim/vlan_switch.h"
#include "packet/headers.h"

namespace gq::sim {
namespace {

using util::MacAddr;

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(util::TimePoint{300}, [&] { order.push_back(3); });
  loop.schedule_at(util::TimePoint{100}, [&] { order.push_back(1); });
  loop.schedule_at(util::TimePoint{200}, [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.events_executed(), 3u);
}

TEST(EventLoop, FifoForEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(util::TimePoint{50}, [&, i] { order.push_back(i); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, RunUntilStopsClockAtDeadline) {
  EventLoop loop;
  bool late = false;
  loop.schedule_at(util::TimePoint{1'000'000}, [&] { late = true; });
  loop.run_until(util::TimePoint{500});
  EXPECT_FALSE(late);
  EXPECT_EQ(loop.now().usec, 500);
  loop.run_until(util::TimePoint{2'000'000});
  EXPECT_TRUE(late);
}

TEST(EventLoop, Cancel) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_in(util::seconds(1), [&] { ran = true; });
  loop.cancel(id);
  loop.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelBogusIdsKeepsPendingExact) {
  EventLoop loop;
  auto id = loop.schedule_in(util::seconds(1), [] {});
  EXPECT_EQ(loop.pending(), 1u);
  // Unknown ids are not recorded and cannot skew the pending count.
  loop.cancel(id + 100);
  loop.cancel(0);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_all();
  EXPECT_EQ(loop.pending(), 0u);
  // Cancelling an already-run id is a no-op too (this used to make
  // pending() underflow).
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.schedule_in(util::seconds(1), [] {});
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, CancelledEntryPurgedOnPop) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_in(util::seconds(1), [&] { ran = true; });
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.cancel(id);  // Double-cancel: second one is a no-op.
  EXPECT_EQ(loop.pending(), 0u);
  loop.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.events_executed(), 0u);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) loop.schedule_in(util::seconds(1), recur);
  };
  loop.schedule_in(util::seconds(1), recur);
  loop.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now().usec, util::seconds(5).usec);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.run_until(util::TimePoint{1000});
  bool ran = false;
  loop.schedule_at(util::TimePoint{0}, [&] { ran = true; });
  loop.run_until(util::TimePoint{1001});
  EXPECT_TRUE(ran);
}

TEST(Port, DeliversAfterLatency) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(50));
  std::vector<std::uint8_t> got;
  util::TimePoint arrival{};
  b.set_rx([&](Frame f) {
    got = f.bytes;
    arrival = loop.now();
  });
  a.transmit(Frame{{1, 2, 3}});
  loop.run_all();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(arrival.usec, 50);
  EXPECT_EQ(a.tx_frames(), 1u);
  EXPECT_EQ(b.rx_frames(), 1u);
}

TEST(Port, UnconnectedDrops) {
  EventLoop loop;
  Port a(loop, "a");
  a.transmit(Frame{{1}});
  loop.run_all();
  EXPECT_EQ(a.dropped_frames(), 1u);
}

// --- VLAN switch ----------------------------------------------------------

// Builds an untagged unicast/broadcast frame with the given MACs.
Frame make_frame(MacAddr dst, MacAddr src) {
  pkt::EthHeader eth;
  eth.dst = dst;
  eth.src = src;
  eth.ethertype = pkt::kEtherTypeIpv4;
  std::vector<std::uint8_t> payload(46, 0);
  return Frame{pkt::serialize_eth(eth, payload)};
}

struct SwitchFixture : ::testing::Test {
  EventLoop loop;
  VlanSwitch sw{loop, "sw", 4};
  Port h0{loop, "h0"}, h1{loop, "h1"}, h2{loop, "h2"}, trunk{loop, "trunk"};
  std::vector<Frame> rx0, rx1, rx2, rx_trunk;

  void SetUp() override {
    Port::connect(h0, sw.port(0), util::microseconds(1));
    Port::connect(h1, sw.port(1), util::microseconds(1));
    Port::connect(h2, sw.port(2), util::microseconds(1));
    Port::connect(trunk, sw.port(3), util::microseconds(1));
    h0.set_rx([&](Frame f) { rx0.push_back(std::move(f)); });
    h1.set_rx([&](Frame f) { rx1.push_back(std::move(f)); });
    h2.set_rx([&](Frame f) { rx2.push_back(std::move(f)); });
    trunk.set_rx([&](Frame f) { rx_trunk.push_back(std::move(f)); });
  }
};

TEST_F(SwitchFixture, FloodsWithinVlanOnly) {
  sw.set_access(0, 10);
  sw.set_access(1, 10);
  sw.set_access(2, 20);
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  EXPECT_EQ(rx1.size(), 1u);   // Same VLAN: sees broadcast.
  EXPECT_EQ(rx2.size(), 0u);   // Different VLAN: isolated.
  EXPECT_EQ(rx0.size(), 0u);   // Never echoed back.
}

TEST_F(SwitchFixture, LearnsAndUnicasts) {
  sw.set_access(0, 10);
  sw.set_access(1, 10);
  sw.set_access(2, 10);
  // h0 announces itself via broadcast; switch learns MAC 100 on port 0.
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  rx1.clear();
  rx2.clear();
  // h1 sends unicast to MAC 100: only h0 receives it.
  h1.transmit(make_frame(MacAddr::local(100), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx0.size(), 1u);
  EXPECT_EQ(rx2.size(), 0u);
}

TEST_F(SwitchFixture, TrunkCarriesTaggedFrames) {
  sw.set_access(0, 10);
  sw.set_trunk_all(3);
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  ASSERT_EQ(rx_trunk.size(), 1u);
  auto parsed = pkt::parse_eth(rx_trunk[0].bytes, nullptr);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->vlan);
  EXPECT_EQ(*parsed->vlan, 10);  // Tag added on trunk egress.
}

TEST_F(SwitchFixture, TrunkToAccessStripsTag) {
  sw.set_access(0, 10);
  sw.set_trunk_all(3);
  pkt::EthHeader eth;
  eth.dst = MacAddr::broadcast();
  eth.src = MacAddr::local(200);
  eth.vlan = 10;
  eth.ethertype = pkt::kEtherTypeIpv4;
  trunk.transmit(Frame{pkt::serialize_eth(eth, std::vector<std::uint8_t>(46, 0))});
  loop.run_all();
  ASSERT_EQ(rx0.size(), 1u);
  auto parsed = pkt::parse_eth(rx0[0].bytes, nullptr);
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->vlan);  // Untagged on access egress.
}

TEST_F(SwitchFixture, SelectiveTrunkFilters) {
  sw.set_access(0, 10);
  sw.set_access(1, 20);
  sw.set_trunk(3, {10});  // Trunk carries only VLAN 10.
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  h1.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx_trunk.size(), 1u);  // Only VLAN 10's broadcast.
}

TEST_F(SwitchFixture, UnconfiguredPortDrops) {
  sw.set_access(0, 10);
  h1.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx0.size(), 0u);
  EXPECT_GE(sw.dropped_frames(), 1u);
}

TEST_F(SwitchFixture, TaggedFrameOnAccessPortDropped) {
  sw.set_access(0, 10);
  sw.set_access(1, 10);
  pkt::EthHeader eth;
  eth.dst = MacAddr::broadcast();
  eth.src = MacAddr::local(100);
  eth.vlan = 10;
  eth.ethertype = pkt::kEtherTypeIpv4;
  h0.transmit(Frame{pkt::serialize_eth(eth, std::vector<std::uint8_t>(46, 0))});
  loop.run_all();
  EXPECT_EQ(rx1.size(), 0u);
}

TEST_F(SwitchFixture, LearningIsPerVlan) {
  // The same MAC on two VLANs must not leak unicast across VLANs.
  sw.set_access(0, 10);
  sw.set_access(1, 20);
  sw.set_access(2, 20);
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  // h1 (VLAN 20) sends a unicast to MAC 100, which was learned on VLAN 10
  // only — the frame must flood VLAN 20 (reaching h2), not go to h0.
  rx0.clear();
  h1.transmit(make_frame(MacAddr::local(100), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx0.size(), 0u);
  EXPECT_EQ(rx2.size(), 1u);
}

}  // namespace
}  // namespace gq::sim
