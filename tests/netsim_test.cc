// Unit tests for src/netsim: event-loop ordering, clock monotonicity and
// cancellation, port links, deterministic link-fault injection, and the
// learning VLAN switch's isolation guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "netsim/event_loop.h"
#include "netsim/fault.h"
#include "netsim/port.h"
#include "netsim/vlan_switch.h"
#include "obs/metrics.h"
#include "packet/headers.h"

namespace gq::sim {
namespace {

using util::MacAddr;

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(util::TimePoint{300}, [&] { order.push_back(3); });
  loop.schedule_at(util::TimePoint{100}, [&] { order.push_back(1); });
  loop.schedule_at(util::TimePoint{200}, [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.events_executed(), 3u);
}

TEST(EventLoop, FifoForEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(util::TimePoint{50}, [&, i] { order.push_back(i); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, RunUntilStopsClockAtDeadline) {
  EventLoop loop;
  bool late = false;
  loop.schedule_at(util::TimePoint{1'000'000}, [&] { late = true; });
  loop.run_until(util::TimePoint{500});
  EXPECT_FALSE(late);
  EXPECT_EQ(loop.now().usec, 500);
  loop.run_until(util::TimePoint{2'000'000});
  EXPECT_TRUE(late);
}

TEST(EventLoop, Cancel) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_in(util::seconds(1), [&] { ran = true; });
  loop.cancel(id);
  loop.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelBogusIdsKeepsPendingExact) {
  EventLoop loop;
  auto id = loop.schedule_in(util::seconds(1), [] {});
  EXPECT_EQ(loop.pending(), 1u);
  // Unknown ids are not recorded and cannot skew the pending count.
  loop.cancel(id + 100);
  loop.cancel(0);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_all();
  EXPECT_EQ(loop.pending(), 0u);
  // Cancelling an already-run id is a no-op too (this used to make
  // pending() underflow).
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.schedule_in(util::seconds(1), [] {});
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, CancelledEntryPurgedOnPop) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_in(util::seconds(1), [&] { ran = true; });
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.cancel(id);  // Double-cancel: second one is a no-op.
  EXPECT_EQ(loop.pending(), 0u);
  loop.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.events_executed(), 0u);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) loop.schedule_in(util::seconds(1), recur);
  };
  loop.schedule_in(util::seconds(1), recur);
  loop.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now().usec, util::seconds(5).usec);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.run_until(util::TimePoint{1000});
  bool ran = false;
  std::int64_t observed_now = -1;
  loop.schedule_at(util::TimePoint{0}, [&] {
    ran = true;
    observed_now = loop.now().usec;
  });
  loop.run_until(util::TimePoint{1001});
  EXPECT_TRUE(ran);
  // The stale event runs *at the current clock*, never in the past: the
  // simulation must not time-travel.
  EXPECT_EQ(observed_now, 1000);
}

TEST(EventLoop, ClockIsMonotoneAcrossMixedScheduling) {
  EventLoop loop;
  std::vector<std::int64_t> observed;
  // Interleave future, equal-time, and already-past schedules; the clock
  // the callbacks observe must never decrease.
  loop.run_until(util::TimePoint{500});
  for (int i = 0; i < 20; ++i) {
    loop.schedule_at(util::TimePoint{i * 37 % 900},
                     [&] { observed.push_back(loop.now().usec); });
  }
  loop.schedule_in(util::microseconds(50), [&] {
    loop.schedule_at(util::TimePoint{0},
                     [&] { observed.push_back(loop.now().usec); });
  });
  loop.run_all();
  ASSERT_FALSE(observed.empty());
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_GE(observed.front(), 500);
}

TEST(EventLoop, DropPendingDestroysWithoutRunning) {
  EventLoop loop;
  int ran = 0;
  // shared_ptr with a counting deleter: drop_pending must destroy the
  // closure (releasing what it owns) without executing it.
  int destroyed = 0;
  auto token = std::shared_ptr<int>(new int(7), [&destroyed](int* p) {
    ++destroyed;
    delete p;
  });
  loop.schedule_in(util::microseconds(10), [&ran, token] { ++ran; });
  token.reset();
  EXPECT_EQ(destroyed, 0);  // The pending closure still owns it.
  loop.drop_pending();
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(loop.pending(), 0u);
  loop.run_all();
  EXPECT_EQ(ran, 0);
}

TEST(Port, DeliversAfterLatency) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(50));
  std::vector<std::uint8_t> got;
  util::TimePoint arrival{};
  b.set_rx([&](Frame f) {
    got = f.bytes;
    arrival = loop.now();
  });
  a.transmit(Frame{{1, 2, 3}});
  loop.run_all();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(arrival.usec, 50);
  EXPECT_EQ(a.tx_frames(), 1u);
  EXPECT_EQ(b.rx_frames(), 1u);
}

TEST(Port, UnconnectedDrops) {
  EventLoop loop;
  Port a(loop, "a");
  a.transmit(Frame{{1}});
  loop.run_all();
  EXPECT_EQ(a.dropped_frames(), 1u);
}

// --- Link-fault injection -------------------------------------------------

// Runs `n` single-byte-tagged frames through a fresh a->b link carrying
// `profile` (seeded with `seed`) and returns the tags in arrival order.
std::vector<std::uint8_t> delivered_tags(const FaultProfile& profile,
                                         std::uint64_t seed, int n) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(100));
  a.set_fault_profile(profile, seed);
  std::vector<std::uint8_t> tags;
  b.set_rx([&](Frame f) { tags.push_back(f.bytes.at(0)); });
  for (int i = 0; i < n; ++i)
    a.transmit(Frame{{static_cast<std::uint8_t>(i)}});
  loop.run_all();
  return tags;
}

TEST(Fault, SameSeedReplaysBitIdentically) {
  FaultProfile profile;
  profile.drop_probability = 0.5;
  profile.jitter_max = util::microseconds(30);
  const auto first = delivered_tags(profile, 42, 200);
  const auto again = delivered_tags(profile, 42, 200);
  EXPECT_EQ(first, again);
  // A different seed draws a different loss pattern (2^-200 odds of a
  // collision over 200 Bernoulli trials).
  const auto other = delivered_tags(profile, 43, 200);
  EXPECT_NE(first, other);
}

TEST(Fault, DropRateTracksProbability) {
  FaultProfile profile;
  profile.drop_probability = 0.25;
  const auto tags = delivered_tags(profile, 7, 2000);
  const auto dropped = 2000 - static_cast<int>(tags.size());
  EXPECT_GT(dropped, 380);  // ~500 expected; generous deterministic bounds.
  EXPECT_LT(dropped, 620);
}

TEST(Fault, DuplicateDeliversExtraCopies) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(100));
  FaultProfile profile;
  profile.duplicate_probability = 1.0;
  a.set_fault_profile(profile, 1);
  int rx = 0;
  b.set_rx([&](Frame) { ++rx; });
  for (int i = 0; i < 10; ++i) a.transmit(Frame{{1, 2, 3}});
  loop.run_all();
  EXPECT_EQ(rx, 20);
  EXPECT_EQ(a.fault_counters().duplicated, 10u);
  EXPECT_EQ(a.fault_counters().dropped, 0u);
}

TEST(Fault, ReorderLetsLaterFramesOvertake) {
  FaultProfile profile;
  profile.reorder_probability = 1.0;
  profile.reorder_window = util::milliseconds(10);
  const auto tags = delivered_tags(profile, 99, 20);
  ASSERT_EQ(tags.size(), 20u);  // Reordering never loses frames.
  auto sorted = tags;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint8_t> identity(20);
  std::iota(identity.begin(), identity.end(), std::uint8_t{0});
  EXPECT_EQ(sorted, identity);  // A permutation of what was sent...
  EXPECT_NE(tags, identity);    // ...that actually overtook somewhere.
}

TEST(Fault, JitterStaysWithinBound) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(100));
  FaultProfile profile;
  profile.jitter_max = util::microseconds(50);
  a.set_fault_profile(profile, 5);
  std::vector<std::int64_t> arrivals;
  b.set_rx([&](Frame) { arrivals.push_back(loop.now().usec); });
  for (int i = 0; i < 100; ++i) a.transmit(Frame{{9}});
  loop.run_all();
  ASSERT_EQ(arrivals.size(), 100u);
  for (const auto at : arrivals) {
    EXPECT_GE(at, 100);
    EXPECT_LE(at, 150);
  }
  EXPECT_GT(a.fault_counters().jittered, 0u);
}

TEST(Fault, FlapSquareWaveKillsLinkOnSchedule) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(10));
  FaultProfile profile;
  profile.flap_period = util::milliseconds(1);   // Down for the final...
  profile.flap_down = util::microseconds(500);   // ...half of each period.
  a.set_fault_profile(profile, 3);
  EXPECT_FALSE(profile.link_down_at(util::TimePoint{100}));
  EXPECT_TRUE(profile.link_down_at(util::TimePoint{700}));
  EXPECT_FALSE(profile.link_down_at(util::TimePoint{1100}));
  int rx = 0;
  b.set_rx([&](Frame) { ++rx; });
  loop.schedule_at(util::TimePoint{100}, [&] { a.transmit(Frame{{1}}); });
  loop.schedule_at(util::TimePoint{700}, [&] { a.transmit(Frame{{2}}); });
  loop.schedule_at(util::TimePoint{1100}, [&] { a.transmit(Frame{{3}}); });
  loop.run_all();
  EXPECT_EQ(rx, 2);  // The t=700 frame died in the down window.
  EXPECT_EQ(a.fault_counters().flap_dropped, 1u);
}

TEST(Fault, SetLossWrapperAndClearFaults) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(10));
  int rx = 0;
  b.set_rx([&](Frame) { ++rx; });
  a.set_loss(1.0, 11);
  a.transmit(Frame{{1}});
  loop.run_all();
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(a.fault_counters().dropped, 1u);
  a.clear_faults();
  EXPECT_FALSE(a.fault_profile().enabled());
  a.transmit(Frame{{2}});
  loop.run_all();
  EXPECT_EQ(rx, 1);
  a.set_loss(0.0, 11);  // Probability 0 keeps the link clean too.
  a.transmit(Frame{{3}});
  loop.run_all();
  EXPECT_EQ(rx, 2);
}

TEST(Fault, CountersMirrorIntoMetricsRegistry) {
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(10));
  obs::MetricsRegistry metrics;
  a.bind_fault_metrics(metrics, "net.fault.a.");
  a.set_loss(1.0, 21);
  b.set_rx([](Frame) {});
  for (int i = 0; i < 4; ++i) a.transmit(Frame{{1}});
  loop.run_all();
  const auto* dropped = metrics.find_counter("net.fault.a.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value(), 4u);
  EXPECT_EQ(a.fault_counters().dropped, 4u);
}

TEST(Fault, IndependentSeedsPerDirection) {
  // The two transmit sides of one link carry independent Rng streams: a
  // shared stream would produce correlated (here: identical) patterns.
  FaultProfile profile;
  profile.drop_probability = 0.5;
  EventLoop loop;
  Port a(loop, "a"), b(loop, "b");
  Port::connect(a, b, util::microseconds(10));
  a.set_fault_profile(profile, 1001);
  b.set_fault_profile(profile, 1002);
  std::vector<std::uint8_t> at_b, at_a;
  a.set_rx([&](Frame f) { at_a.push_back(f.bytes.at(0)); });
  b.set_rx([&](Frame f) { at_b.push_back(f.bytes.at(0)); });
  for (int i = 0; i < 100; ++i) {
    a.transmit(Frame{{static_cast<std::uint8_t>(i)}});
    b.transmit(Frame{{static_cast<std::uint8_t>(i)}});
  }
  loop.run_all();
  EXPECT_NE(at_a, at_b);
}

// --- VLAN switch ----------------------------------------------------------

// Builds an untagged unicast/broadcast frame with the given MACs.
Frame make_frame(MacAddr dst, MacAddr src) {
  pkt::EthHeader eth;
  eth.dst = dst;
  eth.src = src;
  eth.ethertype = pkt::kEtherTypeIpv4;
  std::vector<std::uint8_t> payload(46, 0);
  return Frame{pkt::serialize_eth(eth, payload)};
}

struct SwitchFixture : ::testing::Test {
  EventLoop loop;
  VlanSwitch sw{loop, "sw", 4};
  Port h0{loop, "h0"}, h1{loop, "h1"}, h2{loop, "h2"}, trunk{loop, "trunk"};
  std::vector<Frame> rx0, rx1, rx2, rx_trunk;

  void SetUp() override {
    Port::connect(h0, sw.port(0), util::microseconds(1));
    Port::connect(h1, sw.port(1), util::microseconds(1));
    Port::connect(h2, sw.port(2), util::microseconds(1));
    Port::connect(trunk, sw.port(3), util::microseconds(1));
    h0.set_rx([&](Frame f) { rx0.push_back(std::move(f)); });
    h1.set_rx([&](Frame f) { rx1.push_back(std::move(f)); });
    h2.set_rx([&](Frame f) { rx2.push_back(std::move(f)); });
    trunk.set_rx([&](Frame f) { rx_trunk.push_back(std::move(f)); });
  }
};

TEST_F(SwitchFixture, FloodsWithinVlanOnly) {
  sw.set_access(0, 10);
  sw.set_access(1, 10);
  sw.set_access(2, 20);
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  EXPECT_EQ(rx1.size(), 1u);   // Same VLAN: sees broadcast.
  EXPECT_EQ(rx2.size(), 0u);   // Different VLAN: isolated.
  EXPECT_EQ(rx0.size(), 0u);   // Never echoed back.
}

TEST_F(SwitchFixture, LearnsAndUnicasts) {
  sw.set_access(0, 10);
  sw.set_access(1, 10);
  sw.set_access(2, 10);
  // h0 announces itself via broadcast; switch learns MAC 100 on port 0.
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  rx1.clear();
  rx2.clear();
  // h1 sends unicast to MAC 100: only h0 receives it.
  h1.transmit(make_frame(MacAddr::local(100), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx0.size(), 1u);
  EXPECT_EQ(rx2.size(), 0u);
}

TEST_F(SwitchFixture, TrunkCarriesTaggedFrames) {
  sw.set_access(0, 10);
  sw.set_trunk_all(3);
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  ASSERT_EQ(rx_trunk.size(), 1u);
  auto parsed = pkt::parse_eth(rx_trunk[0].bytes, nullptr);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->vlan);
  EXPECT_EQ(*parsed->vlan, 10);  // Tag added on trunk egress.
}

TEST_F(SwitchFixture, TrunkToAccessStripsTag) {
  sw.set_access(0, 10);
  sw.set_trunk_all(3);
  pkt::EthHeader eth;
  eth.dst = MacAddr::broadcast();
  eth.src = MacAddr::local(200);
  eth.vlan = 10;
  eth.ethertype = pkt::kEtherTypeIpv4;
  trunk.transmit(Frame{pkt::serialize_eth(eth, std::vector<std::uint8_t>(46, 0))});
  loop.run_all();
  ASSERT_EQ(rx0.size(), 1u);
  auto parsed = pkt::parse_eth(rx0[0].bytes, nullptr);
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->vlan);  // Untagged on access egress.
}

TEST_F(SwitchFixture, SelectiveTrunkFilters) {
  sw.set_access(0, 10);
  sw.set_access(1, 20);
  sw.set_trunk(3, {10});  // Trunk carries only VLAN 10.
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  h1.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx_trunk.size(), 1u);  // Only VLAN 10's broadcast.
}

TEST_F(SwitchFixture, UnconfiguredPortDrops) {
  sw.set_access(0, 10);
  h1.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx0.size(), 0u);
  EXPECT_GE(sw.dropped_frames(), 1u);
}

TEST_F(SwitchFixture, TaggedFrameOnAccessPortDropped) {
  sw.set_access(0, 10);
  sw.set_access(1, 10);
  pkt::EthHeader eth;
  eth.dst = MacAddr::broadcast();
  eth.src = MacAddr::local(100);
  eth.vlan = 10;
  eth.ethertype = pkt::kEtherTypeIpv4;
  h0.transmit(Frame{pkt::serialize_eth(eth, std::vector<std::uint8_t>(46, 0))});
  loop.run_all();
  EXPECT_EQ(rx1.size(), 0u);
}

TEST_F(SwitchFixture, LearningIsPerVlan) {
  // The same MAC on two VLANs must not leak unicast across VLANs.
  sw.set_access(0, 10);
  sw.set_access(1, 20);
  sw.set_access(2, 20);
  h0.transmit(make_frame(MacAddr::broadcast(), MacAddr::local(100)));
  loop.run_all();
  // h1 (VLAN 20) sends a unicast to MAC 100, which was learned on VLAN 10
  // only — the frame must flood VLAN 20 (reaching h2), not go to h0.
  rx0.clear();
  h1.transmit(make_frame(MacAddr::local(100), MacAddr::local(101)));
  loop.run_all();
  EXPECT_EQ(rx0.size(), 0u);
  EXPECT_EQ(rx2.size(), 1u);
}

}  // namespace
}  // namespace gq::sim
