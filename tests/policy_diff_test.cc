// Differential safety proof for the compiled in-gateway policy table:
// the table datapath is only admissible if it is *observably identical*
// to the shim path it short-circuits. Two same-seed farms — one with
// the table disabled (every verdict a containment-server round trip),
// one with it enabled — run a multi-policy configuration over identical
// seeded traffic, and the per-flow verdict facts (VLAN, protocol,
// original destination, verdict, policy, annotation, limit) must be
// bit-identical between them. Both runs feed the soak harness's escape
// oracle (every upstream emission needs an authorizing verdict), the
// table-on run must actually exercise the table, the containment server
// may receive only fallback-class flows, and two same-seed table-on
// runs must replay exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "packet/frame.h"
#include "trace/replay.h"
#include "util/strings.h"

namespace gq {
namespace {

using util::Ipv4Addr;

// TCP/UDP destination ports the traffic generator cycles through. 25
// and 80 land in the builtin spambot policies' kFallback arms; 8001-8006
// drive DiffPolicy through every table action incl. its REWRITE
// fallback; 9999 falls to the catch-all arms.
constexpr std::uint16_t kPorts[] = {25, 80, 443, 8001, 8002, 8003,
                                    8004, 8005, 8006, 9999};

// Destination ports that must stay on the shim path under the test's
// policy set: the spambot sink-hint arms (25), the REWRITE C&C filters
// (80), and DiffPolicy's REWRITE arm (8006).
bool fallback_class(std::uint16_t port) {
  return port == 25 || port == 80 || port == 8006;
}

// A fully compiled policy covering every concrete table action plus a
// REWRITE fallback arm — the custom-policy half of the differential
// surface (the INI bindings cover the builtins).
class DiffPolicy : public cs::Policy {
 public:
  explicit DiffPolicy(util::Endpoint sink)
      : cs::Policy("Diff"), sink_(sink) {}

  cs::Decision decide(const cs::FlowInfo& info) override {
    switch (info.dst().port) {
      case 8001: return cs::Decision::forward("allowed");
      case 8002: return cs::Decision::limit(4096);
      case 8003: return cs::Decision::drop("denied");
      case 8004: return cs::Decision::redirect(sink_, "redirected");
      case 8005: return cs::Decision::reflect(sink_, "reflected");
      case 8006: return cs::Decision::rewrite("proxied");
      default:   return cs::Decision::drop("contained");
    }
  }

  std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
      const cs::FlowInfo&) override {
    class Banner : public cs::RewriteHandler {
      void on_inmate_data(cs::RewriteContext& ctx,
                          std::span<const std::uint8_t>) override {
        ctx.send_to_inmate(std::string_view("250 proxied\r\n"));
      }
    };
    return std::make_unique<Banner>();
  }

  std::optional<std::vector<std::uint8_t>> rewrite_udp(
      const cs::FlowInfo&, std::span<const std::uint8_t> payload) override {
    std::vector<std::uint8_t> reply(payload.begin(), payload.end());
    std::reverse(reply.begin(), reply.end());
    return reply;
  }

  std::optional<std::vector<shim::TableRule>> compile() const override {
    auto port_action = [](std::uint16_t port, shim::TableAction action,
                          std::string annotation) {
      shim::TableRule rule;
      rule.port_first = rule.port_last = port;
      rule.action = action;
      rule.annotation = std::move(annotation);
      return rule;
    };
    auto forward = port_action(8001, shim::TableAction::kForward, "allowed");
    auto limit = port_action(8002, shim::TableAction::kLimit,
                             "limit 4096 B/s");
    limit.limit_bytes_per_sec = 4096;
    auto drop = port_action(8003, shim::TableAction::kDrop, "denied");
    auto redirect =
        port_action(8004, shim::TableAction::kRedirect, "redirected");
    redirect.target = sink_;
    auto reflect =
        port_action(8005, shim::TableAction::kReflect, "reflected");
    reflect.target = sink_;
    // REWRITE needs the CS in-path: pin its arm to the shim.
    auto rewrite = port_action(8006, shim::TableAction::kFallback, "");
    shim::TableRule rest;
    rest.action = shim::TableAction::kDrop;
    rest.annotation = "contained";
    return std::vector<shim::TableRule>{forward,  limit,   drop,
                                        redirect, reflect, rewrite, rest};
  }

 private:
  util::Endpoint sink_;
};

struct DiffResult {
  // Source-independent per-flow verdict facts, sorted: what the inmate
  // (and the outside world) can observe of each verdict, with no trace
  // of *where* it was resolved.
  std::vector<std::string> verdict_facts;
  // The full replay-grade event stream (source labels included).
  std::string event_log;
  std::vector<std::string> escapes;
  std::uint64_t table_hits = 0;
  std::uint64_t table_fallbacks = 0;
  std::uint64_t cs_decisions = 0;
  std::uint64_t upstream_ip_frames = 0;
  // Destination ports of flows the containment server decided.
  std::vector<std::uint16_t> cs_ports;
};

DiffResult run_diff(bool table_on, std::uint64_t seed) {
  core::FarmOptions options;
  options.seed = seed;
  options.datapath.policy_table = table_on;
  core::Farm farm(options);

  // Three external echo hosts so consecutive waves are genuine first
  // contacts (a verdict cache or flow-table memo cannot mask the
  // decision path under test).
  const Ipv4Addr echo_addrs[] = {Ipv4Addr(93, 184, 216, 34),
                                 Ipv4Addr(198, 51, 100, 7),
                                 Ipv4Addr(203, 0, 113, 99)};
  std::vector<std::shared_ptr<net::UdpSocket>> echo_udp;
  for (const auto& addr : echo_addrs) {
    auto& echo = farm.add_external_host("echo" + addr.str(), addr);
    for (const auto port : kPorts) {
      echo.listen(port, [](std::shared_ptr<net::TcpConnection> conn) {
        std::weak_ptr<net::TcpConnection> weak = conn;
        conn->on_data = [weak](std::span<const std::uint8_t> data) {
          if (auto c = weak.lock()) c->send(data);
        };
      });
      auto socket = echo.udp_open(port);
      auto* raw = socket.get();
      socket->on_datagram = [raw](util::Endpoint from,
                                  std::vector<std::uint8_t> data) {
        raw->send_to(from, data);
      };
      echo_udp.push_back(std::move(socket));
    }
  }

  auto& sub = farm.add_subfarm("Diff");
  sub.add_catchall_sink();
  sub.add_smtp_sink({});  // Registers "smtpsink" for the spambot arms.
  // Multi-policy INI: two spambot families (whose SMTP/C&C arms compile
  // to kFallback), a pure reflector, and a pure default-deny.
  sub.configure_containment(R"(
[VLAN 16-17]
Decider = Rustock

[VLAN 18-19]
Decider = Grum

[VLAN 20-21]
Decider = SinkAll

[VLAN 22-23]
Decider = DefaultDeny
)");
  const auto sink = sub.policy_env().services.at("sink");
  // Plus a fully compiled custom policy covering every table action.
  sub.bind_policy(24, 25, std::make_shared<DiffPolicy>(sink));

  // --- Escape oracle (identical to the soak harness) ---------------------
  const auto external_net = sub.router().config().external_net;
  struct UpstreamRecord {
    std::int64_t usec;
    pkt::FlowProto proto;
    Ipv4Addr src, dst;
    std::uint16_t sport, dport;
  };
  std::vector<UpstreamRecord> upstream;
  farm.gateway().set_upstream_tap(
      [&](util::TimePoint at, const std::vector<std::uint8_t>& bytes) {
        const auto decoded = pkt::decode_frame(bytes);
        if (!decoded || !decoded->ip) return;
        if (!decoded->is_tcp() && !decoded->is_udp()) return;
        if (!external_net.contains(decoded->ip->src)) return;
        upstream.push_back({at.usec,
                            decoded->is_tcp() ? pkt::FlowProto::kTcp
                                              : pkt::FlowProto::kUdp,
                            decoded->ip->src, decoded->ip->dst,
                            decoded->src_port(), decoded->dst_port()});
      });

  // --- Event capture ----------------------------------------------------
  std::vector<obs::FarmEvent> events;
  std::ostringstream log;
  farm.telemetry().bus().subscribe([&](const obs::FarmEvent& e) {
    events.push_back(e);
    log << trace::event_line(e) << '\n';
  });

  // --- Inmates: VLANs 16-25, one per policy-range slot ------------------
  std::vector<inm::Inmate*> inmates;
  for (int i = 0; i < 10; ++i)
    inmates.push_back(&sub.create_inmate(inm::HostingKind::kVm));

  // --- Traffic: seed-derived (inmate, port, destination) draws ----------
  // The generator rng is derived from the farm seed (not shared with the
  // fabric) so both farms of a pair see the identical schedule, while
  // different seeds exercise different slices of the policy × port
  // space — including every FORWARD/LIMIT arm, whose flows are the ones
  // the escape oracle audits upstream.
  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  std::vector<std::shared_ptr<net::UdpSocket>> udps;
  auto launch_flow = [&](std::size_t who, std::uint16_t port,
                         Ipv4Addr dst) {
    auto& host = inmates[who]->host();
    if (!host.configured()) return;  // Still booting.
    auto conn = host.connect({dst, port});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak] {
      if (auto c = weak.lock()) c->send(std::string_view("hello gq\r\n"));
    };
    conn->on_data = [weak](std::span<const std::uint8_t>) {
      if (auto c = weak.lock()) c->close();
    };
    conns.push_back(std::move(conn));
    auto socket = host.udp_open(0);
    const std::vector<std::uint8_t> ping = {'p', 'i', 'n', 'g'};
    socket->send_to({dst, port}, ping);
    udps.push_back(std::move(socket));
  };
  util::Rng traffic_rng(seed ^ 0x7AB1E5EEDull);
  const auto duration = util::minutes(8);
  for (auto at = util::seconds(60).usec; at < util::minutes(7).usec;
       at += util::seconds(5).usec) {
    for (int burst = 0; burst < 3; ++burst) {
      const auto who = traffic_rng.next() % inmates.size();
      const auto port = kPorts[traffic_rng.next() % std::size(kPorts)];
      const auto dst =
          echo_addrs[traffic_rng.next() % std::size(echo_addrs)];
      const auto jitter =
          static_cast<std::int64_t>(traffic_rng.next() % 3'000'000);
      farm.loop().schedule_at(
          util::TimePoint{at + jitter},
          [&launch_flow, who, port, dst] { launch_flow(who, port, dst); });
    }
  }
  farm.run_for(duration);

  // --- Distill the observable verdict facts + audit escapes -------------
  DiffResult result;
  std::map<std::uint16_t, std::set<Ipv4Addr>> globals_by_vlan;
  std::set<std::tuple<pkt::FlowProto, Ipv4Addr, Ipv4Addr, std::uint16_t>>
      authorized;
  for (const auto& e : events) {
    if (e.kind == obs::FarmEvent::Kind::kDhcpBind)
      globals_by_vlan[e.vlan].insert(e.inmate_global);
    if (e.kind != obs::FarmEvent::Kind::kFlowVerdict) continue;
    std::ostringstream fact;
    fact << e.vlan << (e.proto == pkt::FlowProto::kTcp ? " tcp " : " udp ")
         << e.orig_dst.str() << ' ' << shim::verdict_name(e.verdict)
         << " policy=" << e.policy_name << " ann=" << e.annotation;
    if (e.limit_bytes_per_sec) fact << " limit=" << *e.limit_bytes_per_sec;
    result.verdict_facts.push_back(fact.str());
    if (e.verdict_source == shim::VerdictSource::kShim)
      result.cs_ports.push_back(e.orig_dst.port);
    if (e.verdict != shim::Verdict::kForward &&
        e.verdict != shim::Verdict::kLimit &&
        e.verdict != shim::Verdict::kRewrite)
      continue;
    for (const auto& global : globals_by_vlan[e.vlan])
      authorized.insert({e.proto, global, e.orig_dst.addr, e.orig_dst.port});
  }
  std::sort(result.verdict_facts.begin(), result.verdict_facts.end());
  for (const auto& rec : upstream) {
    ++result.upstream_ip_frames;
    if (!authorized.count({rec.proto, rec.src, rec.dst, rec.dport}))
      result.escapes.push_back(util::format(
          "t=%lld %s:%u -> %s:%u without an authorizing verdict",
          static_cast<long long>(rec.usec), rec.src.str().c_str(), rec.sport,
          rec.dst.str().c_str(), rec.dport));
  }
  result.event_log = log.str();
  result.table_hits = sub.router().table_hits();
  result.table_fallbacks = sub.router().table_fallbacks();
  result.cs_decisions = sub.containment().flows_decided();
  return result;
}

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

TEST(PolicyDiff, TableOnAndTableOffProduceIdenticalVerdictStreams) {
  const auto off = run_diff(/*table_on=*/false, 0xD1FF);
  const auto on = run_diff(/*table_on=*/true, 0xD1FF);

  // The gate itself: bit-identical observable verdict facts.
  EXPECT_EQ(off.verdict_facts, on.verdict_facts);
  ASSERT_GT(on.verdict_facts.size(), 50u);

  // Both farms must actually have carried traffic, and neither may have
  // leaked a single unauthorized frame upstream.
  EXPECT_GT(off.upstream_ip_frames, 0u);
  EXPECT_GT(on.upstream_ip_frames, 0u);
  EXPECT_TRUE(off.escapes.empty()) << join(off.escapes);
  EXPECT_TRUE(on.escapes.empty()) << join(on.escapes);

  // The comparison is vacuous unless the table-on run really resolved
  // first contacts in-gateway.
  EXPECT_EQ(off.table_hits, 0u);
  EXPECT_GT(on.table_hits, 50u);
  EXPECT_GT(on.table_fallbacks, 0u);
  EXPECT_LT(on.cs_decisions, off.cs_decisions);

  // With the table on, the containment server saw *only* fallback-class
  // flows: the spambot SMTP/C&C arms and the REWRITE arm.
  for (const auto port : on.cs_ports)
    EXPECT_TRUE(fallback_class(port))
        << "CS decided a table-class flow to port " << port;
}

TEST(PolicyDiff, SameSeedTableOnRunsReplayExactly) {
  // Determinism of the table datapath itself: two table-on runs with
  // the same seed produce byte-identical event streams (source labels
  // included) — the replay/trace machinery depends on this.
  const auto a = run_diff(/*table_on=*/true, 0xF00D);
  const auto b = run_diff(/*table_on=*/true, 0xF00D);
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_GT(a.table_hits, 0u);

  // And a different seed actually changes the stream (the equality
  // above is not comparing empty or degenerate logs).
  const auto c = run_diff(/*table_on=*/true, 0xBEEF);
  EXPECT_NE(a.event_log, c.event_log);
}

}  // namespace
}  // namespace gq
