// Unit tests for the zero-copy FrameView: the in-place NAT rewrite with
// incrementally maintained checksums must be byte-identical to the
// decode / mutate / re-encode slow path for every canonical frame shape
// the gateway forwards (TCP and UDP, VLAN-tagged and untagged, odd and
// even payload lengths), and non-canonical frames must be rejected so
// they fall back to the slow path. Also covers the FlowKeyHash functor
// the hashed flow tables are built on.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "packet/checksum.h"
#include "packet/frame.h"
#include "packet/frame_view.h"
#include "packet/headers.h"
#include "util/rng.h"

namespace gq::pkt {
namespace {

using util::Ipv4Addr;

struct FrameSpec {
  bool tcp = true;
  bool tagged = false;
  std::size_t payload_len = 0;
  std::uint8_t flags = kTcpAck | kTcpPsh;
};

std::vector<std::uint8_t> make_frame(const FrameSpec& spec, util::Rng& rng) {
  DecodedFrame frame;
  frame.eth.src = util::MacAddr::local(7);
  frame.eth.dst = util::MacAddr::local(8);
  frame.eth.ethertype = kEtherTypeIpv4;
  if (spec.tagged) frame.eth.vlan = 21;
  frame.ip = Ipv4Packet{};
  frame.ip->src = Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
  frame.ip->dst = Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
  frame.ip->ttl = 63;
  std::vector<std::uint8_t> payload(spec.payload_len);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  if (spec.tcp) {
    frame.tcp = TcpSegment{};
    frame.tcp->src_port = static_cast<std::uint16_t>(rng.next());
    frame.tcp->dst_port = static_cast<std::uint16_t>(rng.next());
    frame.tcp->seq = static_cast<std::uint32_t>(rng.next());
    frame.tcp->ack = static_cast<std::uint32_t>(rng.next());
    frame.tcp->flags = spec.flags;
    frame.tcp->payload = std::move(payload);
  } else {
    frame.udp = UdpDatagram{static_cast<std::uint16_t>(rng.next()),
                            static_cast<std::uint16_t>(rng.next()),
                            std::move(payload)};
  }
  return frame.encode();
}

TEST(FrameView, ParseLocatesFields) {
  util::Rng rng(1);
  auto bytes = make_frame({true, true, 32}, rng);
  auto view = FrameView::parse(bytes, ViewVerify::kFull);
  ASSERT_TRUE(view);
  auto decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded && decoded->tcp);
  EXPECT_EQ(view->vlan(), decoded->eth.vlan);
  EXPECT_EQ(view->ip_src(), decoded->ip->src);
  EXPECT_EQ(view->ip_dst(), decoded->ip->dst);
  EXPECT_EQ(view->src_port(), decoded->tcp->src_port);
  EXPECT_EQ(view->dst_port(), decoded->tcp->dst_port);
  EXPECT_EQ(view->tcp_seq(), decoded->tcp->seq);
  EXPECT_EQ(view->tcp_ack(), decoded->tcp->ack);
  EXPECT_EQ(view->payload_len(), decoded->tcp->payload.size());
  EXPECT_EQ(view->flow_key(), *flow_key_of(*decoded));
}

// The core property: rewriting through the view must produce the exact
// bytes the slow path's decode / mutate / re-encode produces, for every
// combination of protocol, tagging, and payload parity, across many
// random header values and payload contents.
TEST(FrameView, RewriteByteIdenticalToReencode) {
  util::Rng rng(0xFA57);
  for (const bool tcp : {true, false}) {
    for (const bool tagged : {false, true}) {
      for (const std::size_t payload_len :
           {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
            std::size_t{117}, std::size_t{512}, std::size_t{1459},
            std::size_t{1460}}) {
        for (int trial = 0; trial < 8; ++trial) {
          FrameSpec spec;
          spec.tcp = tcp;
          spec.tagged = tagged;
          spec.payload_len = payload_len;
          if (tcp && (trial % 2)) spec.flags = kTcpAck | kTcpFin;
          auto bytes = make_frame(spec, rng);

          const Ipv4Addr new_src(static_cast<std::uint32_t>(rng.next()));
          const Ipv4Addr new_dst(static_cast<std::uint32_t>(rng.next()));
          const std::uint16_t new_sport =
              static_cast<std::uint16_t>(rng.next());
          const std::uint16_t new_dport =
              static_cast<std::uint16_t>(rng.next());
          const std::uint32_t d_seq = static_cast<std::uint32_t>(rng.next());
          const std::uint32_t d_ack = static_cast<std::uint32_t>(rng.next());

          // Slow path: full decode, mutate, re-encode.
          auto decoded = decode_frame(bytes);
          ASSERT_TRUE(decoded);
          decoded->ip->src = new_src;
          decoded->ip->dst = new_dst;
          if (tcp) {
            decoded->tcp->src_port = new_sport;
            decoded->tcp->dst_port = new_dport;
            decoded->tcp->seq += d_seq;
            decoded->tcp->ack -= d_ack;
          } else {
            decoded->udp->src_port = new_sport;
            decoded->udp->dst_port = new_dport;
          }
          const auto slow = decoded->encode();

          // Fast path: in-place rewrite with incremental checksums.
          auto view = FrameView::parse(bytes, ViewVerify::kFull);
          ASSERT_TRUE(view) << "canonical frame must parse";
          view->set_ip_src(new_src);
          view->set_ip_dst(new_dst);
          view->set_src_port(new_sport);
          view->set_dst_port(new_dport);
          if (tcp) {
            view->set_tcp_seq(view->tcp_seq() + d_seq);
            view->set_tcp_ack(view->tcp_ack() - d_ack);
          }

          ASSERT_EQ(bytes, slow)
              << "tcp=" << tcp << " tagged=" << tagged
              << " payload=" << payload_len << " trial=" << trial;
          // And the rewritten frame still verifies end to end.
          EXPECT_TRUE(FrameView::parse(bytes, ViewVerify::kFull));
        }
      }
    }
  }
}

TEST(FrameView, NoOpRewriteLeavesFrameUntouched) {
  util::Rng rng(3);
  auto bytes = make_frame({true, false, 100}, rng);
  const auto original = bytes;
  auto view = FrameView::parse(bytes, ViewVerify::kFull);
  ASSERT_TRUE(view);
  view->set_ip_src(view->ip_src());
  view->set_src_port(view->src_port());
  view->set_tcp_seq(view->tcp_seq());
  view->set_tcp_ack(view->tcp_ack());
  EXPECT_EQ(bytes, original);
}

TEST(FrameView, RejectsNonCanonicalFrames) {
  util::Rng rng(4);
  // Truncated frame.
  auto bytes = make_frame({true, false, 20}, rng);
  auto short_frame = std::vector<std::uint8_t>(bytes.begin(),
                                               bytes.begin() + 20);
  EXPECT_FALSE(FrameView::parse(short_frame));
  // Trailing padding (total_len no longer covers the buffer).
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(FrameView::parse(padded));
  // Fragmented packet.
  auto fragged = bytes;
  fragged[14 + 6] = 0x20;  // More-fragments flag.
  EXPECT_FALSE(FrameView::parse(fragged));
  // Corrupt IP header checksum (kIpHeader verification catches it).
  auto corrupt = bytes;
  corrupt[14 + 10] ^= 0xFF;
  EXPECT_FALSE(FrameView::parse(corrupt));
  // Corrupt payload byte passes kIpHeader but fails kFull.
  auto payload_corrupt = bytes;
  payload_corrupt.back() ^= 0xFF;
  EXPECT_TRUE(FrameView::parse(payload_corrupt, ViewVerify::kIpHeader));
  EXPECT_FALSE(FrameView::parse(payload_corrupt, ViewVerify::kFull));
  // Zero UDP checksum ("no checksum" convention): not canonical.
  auto udp = make_frame({false, false, 16}, rng);
  udp[14 + 20 + 6] = 0;
  udp[14 + 20 + 7] = 0;
  EXPECT_FALSE(FrameView::parse(udp, ViewVerify::kNone));
  // ARP is not IPv4.
  DecodedFrame arp;
  arp.eth.ethertype = kEtherTypeArp;
  arp.arp = ArpMessage{};
  auto arp_bytes = arp.encode();
  EXPECT_FALSE(FrameView::parse(arp_bytes));
}

TEST(FrameView, VlanHelpers) {
  util::Rng rng(5);
  auto tagged = make_frame({true, true, 64}, rng);
  auto untagged = make_frame({true, false, 64}, rng);
  EXPECT_EQ(vlan_vid_of(tagged), std::optional<std::uint16_t>{21});
  EXPECT_EQ(vlan_vid_of(untagged), std::nullopt);

  // Strip in place, retagging restores the original bytes, and the
  // strip retains capacity so the re-tag cannot reallocate.
  auto work = tagged;
  strip_vlan_tag(work);
  EXPECT_EQ(work.size(), tagged.size() - 4);
  EXPECT_EQ(vlan_vid_of(work), std::nullopt);
  const auto* data_before = work.data();
  insert_vlan_tag(work, 21);
  EXPECT_EQ(work, tagged);
  EXPECT_EQ(work.data(), data_before);

  // ipv4_dst_of peeks the destination of untagged frames only.
  auto decoded = decode_frame(untagged);
  EXPECT_EQ(ipv4_dst_of(untagged), decoded->ip->dst);
  EXPECT_EQ(ipv4_dst_of(tagged), std::nullopt);
}

TEST(FlowKeyHash, DeterministicAndEqualConsistent) {
  util::Rng rng(6);
  FlowKeyHash hash;
  for (int i = 0; i < 100; ++i) {
    const FlowKey key{i % 2 ? FlowProto::kTcp : FlowProto::kUdp,
                      {Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                       static_cast<std::uint16_t>(rng.next())},
                      {Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                       static_cast<std::uint16_t>(rng.next())}};
    const FlowKey copy = key;
    EXPECT_EQ(hash(key), hash(copy));
    EXPECT_EQ(hash(key), FlowKeyHash{}(key));
    EXPECT_NE(hash(key), hash(key.reversed()));
  }
}

TEST(FlowKeyHash, CollisionSanityOnRealisticKeys) {
  // The adversarial-but-realistic case: one subfarm's inmates opening
  // flows with sequential source ports to a handful of destinations.
  // A naive XOR-of-fields hash degenerates here; splitmix finalization
  // must keep the collision count negligible.
  FlowKeyHash hash;
  std::unordered_set<std::size_t> seen;
  std::size_t count = 0;
  for (std::uint32_t inmate = 0; inmate < 16; ++inmate) {
    for (std::uint16_t port = 1024; port < 1024 + 256; ++port) {
      for (std::uint8_t dst = 0; dst < 4; ++dst) {
        const FlowKey key{FlowProto::kTcp,
                          {Ipv4Addr(10, 1, 0, static_cast<std::uint8_t>(
                                                  10 + inmate)),
                           port},
                          {Ipv4Addr(192, 150, 187, dst), 80}};
        seen.insert(hash(key));
        ++count;
      }
    }
  }
  // 16 * 256 * 4 = 16384 keys; allow a tiny number of 64-bit collisions.
  EXPECT_GE(seen.size(), count - 2);
}

}  // namespace
}  // namespace gq::pkt
