// Compiled in-gateway policy table (the tentpole): unit tests of the
// match-action table's specificity ordering and epoch discipline, the
// shim wire v4 codec, and full-farm integration of the first-contact
// fast path it creates — flows matching a concrete compiled rule are
// resolved by the router with zero containment-server round trips,
// fallback arms still take the shim path, a table hit never seeds the
// verdict cache, and a policy reload invalidates table and cache in one
// atomic epoch bump.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "containment/policies.h"
#include "containment/policy.h"
#include "core/farm.h"
#include "gateway/policy_table.h"
#include "shim/table_sync.h"

namespace gq {
namespace {

using util::Endpoint;
using util::Ipv4Addr;

// --- PolicyTable unit tests -------------------------------------------------

shim::TableRule rule(shim::TableAction action, std::uint16_t priority = 0) {
  shim::TableRule r;
  r.action = action;
  r.priority = priority;
  return r;
}

shim::TableSync table_of(std::vector<shim::TableRule> rules,
                         std::uint64_t epoch = 0) {
  shim::TableSync sync;
  sync.epoch = epoch;
  sync.rules = std::move(rules);
  return sync;
}

const Endpoint kWeb{Ipv4Addr(93, 184, 216, 34), 80};

TEST(PolicyTable, LongestPrefixWins) {
  auto broad = rule(shim::TableAction::kForward);
  broad.dst_prefix = Ipv4Addr(93, 0, 0, 0);
  broad.prefix_len = 8;
  auto narrow = rule(shim::TableAction::kDrop);
  narrow.dst_prefix = Ipv4Addr(93, 184, 216, 0);
  narrow.prefix_len = 24;

  gw::PolicyTable table;
  ASSERT_TRUE(table.install(table_of({broad, narrow})));
  const auto* hit =
      table.lookup(16, shim::TableRule::kProtoTcp, kWeb);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, shim::TableAction::kDrop);
  // Outside the /24 but inside the /8: the broad rule matches.
  hit = table.lookup(16, shim::TableRule::kProtoTcp,
                     {Ipv4Addr(93, 10, 0, 1), 80});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, shim::TableAction::kForward);
  // Outside both: a miss.
  EXPECT_EQ(table.lookup(16, shim::TableRule::kProtoTcp,
                         {Ipv4Addr(8, 8, 8, 8), 80}),
            nullptr);
}

TEST(PolicyTable, NarrowerPortRangeWins) {
  auto any_port = rule(shim::TableAction::kForward);
  auto smtp_only = rule(shim::TableAction::kDrop);
  smtp_only.port_first = smtp_only.port_last = 25;

  gw::PolicyTable table;
  ASSERT_TRUE(table.install(table_of({any_port, smtp_only})));
  const auto* hit = table.lookup(16, shim::TableRule::kProtoTcp,
                                 {kWeb.addr, 25});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, shim::TableAction::kDrop);
  hit = table.lookup(16, shim::TableRule::kProtoTcp, kWeb);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, shim::TableAction::kForward);
}

TEST(PolicyTable, EarlierBindingBeatsLaterSpecificity) {
  // Priority is the policy-binding index: a catch-all from binding 0
  // must shadow even a /32 from binding 1, exactly like the containment
  // server's first-match-across-bindings decide() precedence.
  auto catch_all = rule(shim::TableAction::kForward, /*priority=*/0);
  auto host_rule = rule(shim::TableAction::kDrop, /*priority=*/1);
  host_rule.dst_prefix = kWeb.addr;
  host_rule.prefix_len = 32;

  gw::PolicyTable table;
  ASSERT_TRUE(table.install(table_of({host_rule, catch_all})));
  const auto* hit = table.lookup(16, shim::TableRule::kProtoTcp, kWeb);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, shim::TableAction::kForward);
}

TEST(PolicyTable, VlanAndProtocolPartitionTheTable) {
  auto tcp_only = rule(shim::TableAction::kForward);
  tcp_only.vlan_first = 16;
  tcp_only.vlan_last = 31;
  tcp_only.proto = shim::TableRule::kProtoTcp;

  gw::PolicyTable table;
  ASSERT_TRUE(table.install(table_of({tcp_only})));
  EXPECT_NE(table.lookup(16, shim::TableRule::kProtoTcp, kWeb), nullptr);
  EXPECT_NE(table.lookup(31, shim::TableRule::kProtoTcp, kWeb), nullptr);
  EXPECT_EQ(table.lookup(32, shim::TableRule::kProtoTcp, kWeb), nullptr);
  EXPECT_EQ(table.lookup(16, shim::TableRule::kProtoUdp, kWeb), nullptr);

  auto any_proto = rule(shim::TableAction::kDrop);
  ASSERT_TRUE(table.install(table_of({any_proto})));
  EXPECT_NE(table.lookup(16, shim::TableRule::kProtoUdp, kWeb), nullptr);
}

TEST(PolicyTable, StaleEpochRejectedSameEpochIdempotent) {
  gw::PolicyTable table;
  ASSERT_TRUE(table.install(table_of({rule(shim::TableAction::kDrop)}, 5)));
  EXPECT_EQ(table.epoch(), 5u);
  EXPECT_EQ(table.size(), 1u);

  // Older epoch: refused, current table untouched.
  EXPECT_FALSE(
      table.install(table_of({rule(shim::TableAction::kForward)}, 4)));
  EXPECT_EQ(table.epoch(), 5u);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.rules()[0].action, shim::TableAction::kDrop);

  // Same epoch: accepted idempotently (UDP pushes may repeat).
  EXPECT_TRUE(
      table.install(table_of({rule(shim::TableAction::kForward)}, 5)));
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.rules()[0].action, shim::TableAction::kForward);
}

// --- Shim wire v4 codec -----------------------------------------------------

TEST(TableSyncCodec, RoundTripPreservesEveryField) {
  shim::TableSync sync;
  sync.epoch = 0x1122334455667788ull;
  shim::TableRule a;
  a.vlan_first = 16;
  a.vlan_last = 31;
  a.dst_prefix = Ipv4Addr(10, 3, 0, 0);
  a.prefix_len = 16;
  a.proto = shim::TableRule::kProtoTcp;
  a.port_first = 25;
  a.port_last = 25;
  a.priority = 2;
  a.action = shim::TableAction::kReflect;
  a.target = {Ipv4Addr(10, 3, 0, 99), 9999};
  a.policy_name = "Rustock";
  a.annotation = "sink containment";
  shim::TableRule b;
  b.action = shim::TableAction::kLimit;
  b.limit_bytes_per_sec = 512 * 1024;
  sync.rules = {a, b};

  const auto frame = sync.encode();
  const auto parsed = shim::TableSync::parse(frame);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->epoch, sync.epoch);
  ASSERT_EQ(parsed->rules.size(), 2u);
  const auto& pa = parsed->rules[0];
  EXPECT_EQ(pa.vlan_first, a.vlan_first);
  EXPECT_EQ(pa.vlan_last, a.vlan_last);
  EXPECT_EQ(pa.dst_prefix, a.dst_prefix);
  EXPECT_EQ(pa.prefix_len, a.prefix_len);
  EXPECT_EQ(pa.proto, a.proto);
  EXPECT_EQ(pa.port_first, a.port_first);
  EXPECT_EQ(pa.port_last, a.port_last);
  EXPECT_EQ(pa.priority, a.priority);
  EXPECT_EQ(pa.action, a.action);
  EXPECT_EQ(pa.target, a.target);
  EXPECT_EQ(pa.policy_name, a.policy_name);
  EXPECT_EQ(pa.annotation, a.annotation);
  EXPECT_EQ(parsed->rules[1].action, shim::TableAction::kLimit);
  EXPECT_EQ(parsed->rules[1].limit_bytes_per_sec, b.limit_bytes_per_sec);
}

TEST(TableSyncCodec, EveryTruncationIsRejected) {
  shim::TableSync sync;
  sync.epoch = 7;
  auto r = rule(shim::TableAction::kRedirect);
  r.target = {Ipv4Addr(10, 3, 0, 9), 8080};
  r.annotation = "redirected";
  sync.rules = {r};
  const auto frame = sync.encode();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(shim::TableSync::parse(
        std::span<const std::uint8_t>(frame.data(), len)))
        << "truncation to " << len << " bytes parsed";
  }
  EXPECT_TRUE(shim::TableSync::parse(frame));
}

TEST(TableSyncCodec, CorruptionIsRejected) {
  shim::TableSync sync;
  sync.rules = {rule(shim::TableAction::kDrop)};
  const auto good = sync.encode();

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(shim::TableSync::parse(bad_magic));

  auto bad_version = good;
  bad_version[7] = shim::kShimVersion;  // v3 stream version on a v4 frame.
  EXPECT_FALSE(shim::TableSync::parse(bad_version));

  // Action opcode 0 and past-the-end are both invalid.
  auto bad_action = good;
  bad_action[shim::kTableSyncHeaderSize + 10] = 0;
  EXPECT_FALSE(shim::TableSync::parse(bad_action));
  bad_action[shim::kTableSyncHeaderSize + 10] = 7;
  EXPECT_FALSE(shim::TableSync::parse(bad_action));

  // A rule_count promising more rules than the frame carries.
  auto bad_count = good;
  bad_count[shim::kTableSyncHeaderSize - 3] = 9;
  EXPECT_FALSE(shim::TableSync::parse(bad_count));
}

// --- Full-farm integration --------------------------------------------------

// A compilable policy split across both datapaths: port 80 compiles to
// a concrete in-gateway FORWARD, port 25 is pinned to the shim path
// (kFallback), everything else drops in the table. decide() mirrors the
// rules exactly, and marks its decisions cacheable so the tests can
// observe that table hits never seed the cache.
class SplitPolicy : public cs::Policy {
 public:
  SplitPolicy() : cs::Policy("Split") {}

  cs::Decision decide(const cs::FlowInfo& info) override {
    if (info.dst().port == 80)
      return cs::Decision::forward("web allowed")
          .cached(shim::CacheScope::kDstEndpoint);
    if (info.dst().port == 25)
      return cs::Decision::drop("smtp contained")
          .cached(shim::CacheScope::kDstEndpoint);
    return cs::Decision::drop("default contained");
  }

  std::optional<std::vector<shim::TableRule>> compile() const override {
    shim::TableRule web;
    web.port_first = web.port_last = 80;
    web.action = shim::TableAction::kForward;
    web.annotation = "web allowed";
    shim::TableRule smtp;
    smtp.port_first = smtp.port_last = 25;
    smtp.action = shim::TableAction::kFallback;
    shim::TableRule rest;
    rest.action = shim::TableAction::kDrop;
    rest.annotation = "default contained";
    return std::vector<shim::TableRule>{web, smtp, rest};
  }
};

struct TableFarm {
  core::Farm farm;
  core::Subfarm* sub = nullptr;
  net::HostStack* web = nullptr;
  inm::Inmate* inmate = nullptr;
  int web_accepts = 0;

  explicit TableFarm(core::FarmOptions options = {}) : farm(options) {
    web = &farm.add_external_host("web", Ipv4Addr(93, 184, 216, 34));
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{25}}) {
      web->listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
        ++web_accepts;
        std::weak_ptr<net::TcpConnection> weak = conn;
        conn->on_data = [weak](std::span<const std::uint8_t> d) {
          if (auto c = weak.lock()) c->send(d);
        };
      });
    }
    sub = &farm.add_subfarm("Table");
    inmate = &sub->create_inmate(inm::HostingKind::kVm);
    farm.run_for(util::minutes(2));  // Boot + DHCP.
  }

  void bind(std::shared_ptr<cs::Policy> policy) {
    sub->bind_policy(sub->router().config().vlan_first,
                     sub->router().config().vlan_last, std::move(policy));
    // The compiled table rides a UDP datagram to the gateway: let the
    // loop deliver it before the first flow probes the table.
    farm.run_for(util::seconds(1));
  }

  // One echo exchange against web:<port>; returns the bytes echoed back.
  std::string exchange(const std::string& payload, std::uint16_t port = 80) {
    std::string answer;
    auto conn = inmate->host().connect({Ipv4Addr(93, 184, 216, 34), port});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak, payload] {
      if (auto c = weak.lock()) c->send(payload);
    };
    conn->on_data = [weak, &answer](std::span<const std::uint8_t> d) {
      answer.append(reinterpret_cast<const char*>(d.data()), d.size());
      if (auto c = weak.lock()) c->close();
    };
    farm.run_for(util::seconds(30));
    return answer;
  }

  std::uint64_t counter(const std::string& name) {
    const auto* c = farm.metrics().find_counter("gw.Table." + name);
    return c ? c->value() : 0;
  }
};

TEST(PolicyTableFarm, FirstContactResolvedWithoutContainmentServer) {
  TableFarm f;
  std::vector<shim::VerdictSource> sources;
  f.farm.telemetry().bus().subscribe([&](const obs::FarmEvent& e) {
    if (e.kind == obs::FarmEvent::Kind::kFlowVerdict)
      sources.push_back(e.verdict_source);
  });
  f.bind(std::make_shared<cs::ForwardAllPolicy>());

  // Three first-contact flows to *distinct* ports of the same host would
  // each need a shim round trip (or at best one miss + two cache hits);
  // the compiled catch-all FORWARD resolves all three in-gateway.
  EXPECT_EQ(f.exchange("one"), "one");
  EXPECT_EQ(f.exchange("two", 25), "two");
  EXPECT_EQ(f.exchange("three"), "three");
  EXPECT_EQ(f.web_accepts, 3);
  EXPECT_EQ(f.sub->containment().flows_decided(), 0u);
  EXPECT_EQ(f.sub->router().table_hits(), 3u);
  EXPECT_EQ(f.counter("table_hit"), 3u);
  EXPECT_GE(f.counter("table_sync"), 1u);

  // Every verdict event is labelled with its source...
  ASSERT_EQ(sources.size(), 3u);
  for (auto source : sources)
    EXPECT_EQ(source, shim::VerdictSource::kTable);
  // ...and the trace index carries the same annotation.
  std::size_t table_in_trace = 0;
  for (const auto& flow : f.sub->router().trace().index().flows())
    if (flow.has_verdict &&
        flow.verdict_source == shim::VerdictSource::kTable)
      ++table_in_trace;
  EXPECT_EQ(table_in_trace, 3u);
}

TEST(PolicyTableFarm, DropRulesContainLocally) {
  TableFarm f;
  f.bind(std::make_shared<cs::DefaultDenyPolicy>());
  int resets = 0;
  for (int i = 0; i < 3; ++i) {
    auto conn = f.inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 80});
    conn->on_reset = [&] { ++resets; };
    f.farm.run_for(util::seconds(15));
  }
  EXPECT_EQ(resets, 3);
  EXPECT_EQ(f.web_accepts, 0);  // Containment held, at line rate.
  EXPECT_EQ(f.sub->containment().flows_decided(), 0u);
  EXPECT_EQ(f.sub->router().table_hits(), 3u);
}

TEST(PolicyTableFarm, FallbackArmsStillReachTheContainmentServer) {
  TableFarm f;
  f.bind(std::make_shared<SplitPolicy>());

  // Port 80: concrete rule, in-gateway FORWARD, CS never consulted.
  EXPECT_EQ(f.exchange("web"), "web");
  EXPECT_EQ(f.sub->containment().flows_decided(), 0u);
  EXPECT_EQ(f.sub->router().table_hits(), 1u);

  // Port 25: the kFallback arm pins SMTP to the shim path — the CS
  // decides (and its DROP resets the connection).
  bool reset = false;
  auto conn = f.inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 25});
  conn->on_reset = [&] { reset = true; };
  f.farm.run_for(util::seconds(15));
  EXPECT_TRUE(reset);
  EXPECT_EQ(f.web_accepts, 1);
  EXPECT_EQ(f.sub->containment().flows_decided(), 1u);
  EXPECT_EQ(f.sub->router().table_fallbacks(), 1u);
}

TEST(PolicyTableFarm, TableHitsNeverSeedTheVerdictCache) {
  // SplitPolicy marks its port-80 decision cacheable, but the flow is
  // resolved by the table — which must not insert a cache entry: the
  // cache is the shim path's memo, and a table entry already covers the
  // flow at zero cost.
  TableFarm f;
  f.bind(std::make_shared<SplitPolicy>());
  EXPECT_EQ(f.exchange("a"), "a");
  EXPECT_EQ(f.exchange("b"), "b");
  EXPECT_EQ(f.sub->router().table_hits(), 2u);
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 0u);
  EXPECT_EQ(f.counter("cache_insert"), 0u);
  EXPECT_EQ(f.counter("cache_hit"), 0u);
  // The cache was never even consulted for those flows.
  EXPECT_EQ(f.counter("cache_miss"), 0u);
}

TEST(PolicyTableFarm, EpochBumpFlushesTableAndCacheAtomically) {
  // Warm the verdict cache through a fallback-class flow, then install
  // a newer-epoch table directly: the install must flush the cache in
  // the same step it swaps the rules (one invalidation point for both
  // local datapaths).
  TableFarm f;
  f.bind(std::make_shared<SplitPolicy>());
  bool reset = false;
  auto conn = f.inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 25});
  conn->on_reset = [&] { reset = true; };
  f.farm.run_for(util::seconds(15));
  ASSERT_TRUE(reset);
  ASSERT_EQ(f.sub->router().verdict_cache().size(), 1u);

  shim::TableSync newer;
  newer.epoch = f.sub->containment().policy_epoch() + 1;
  newer.rules = {rule(shim::TableAction::kForward)};
  ASSERT_TRUE(f.sub->router().install_policy_table(newer));
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 0u);
  EXPECT_GE(f.counter("cache_flush"), 1u);
  EXPECT_EQ(f.sub->router().policy_table().epoch(), newer.epoch);
  ASSERT_EQ(f.sub->router().policy_table().size(), 1u);

  // And the new table serves first contacts under the new epoch.
  EXPECT_EQ(f.exchange("fresh", 25), "fresh");
  EXPECT_GE(f.sub->router().table_hits(), 1u);
}

TEST(PolicyTableFarm, StaleSyncIsRejectedAndCounted) {
  TableFarm f;
  f.sub->configure_containment("[VLAN 16-31]\nDecider = ForwardAll\n");
  f.farm.run_for(util::seconds(1));
  const auto epoch = f.sub->router().policy_table().epoch();
  ASSERT_GE(epoch, 1u);

  shim::TableSync stale;
  stale.epoch = epoch - 1;
  stale.rules = {rule(shim::TableAction::kDrop)};
  EXPECT_FALSE(f.sub->router().install_policy_table(stale));
  EXPECT_EQ(f.sub->router().policy_table().epoch(), epoch);
  EXPECT_GE(f.counter("table_stale"), 1u);
  // The current-epoch table still serves.
  EXPECT_EQ(f.exchange("still"), "still");
  EXPECT_EQ(f.sub->containment().flows_decided(), 0u);
}

TEST(PolicyTableFarm, MidRunReloadResolvesInFlightAgainstNewEpoch) {
  // A flow caught mid-decision by a policy reload: under the old config
  // the CS delays decisions 5s (and, unbound, would deny); 1s into the
  // wait the operator reloads to ForwardAll. The drain fires after the
  // reload, so the decision resolves against the *new* policy set and
  // carries the new epoch — the flow connects, and nothing from the old
  // generation survives in either local datapath.
  TableFarm f;
  f.sub->configure_containment("[Overload]\nDecisionDelayMs = 5000\n");
  f.farm.run_for(util::seconds(1));

  // The router completes the inmate-side handshake while the verdict is
  // pending (it must, to capture the flow's first bytes for the shim),
  // so "connected" says nothing — the upstream leg opening does.
  std::string answer;
  auto conn = f.inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 80});
  std::weak_ptr<net::TcpConnection> weak = conn;
  conn->on_connected = [weak] {
    if (auto c = weak.lock()) c->send("inflight");
  };
  conn->on_data = [&answer](std::span<const std::uint8_t> d) {
    answer.append(reinterpret_cast<const char*>(d.data()), d.size());
  };
  f.farm.run_for(util::seconds(1));  // Request shim now queued on the CS.
  ASSERT_EQ(f.web_accepts, 0);

  f.sub->configure_containment(
      "[VLAN 16-31]\nDecider = ForwardAll\n"
      "[Overload]\nDecisionDelayMs = 5000\n");
  const auto new_epoch = f.sub->containment().policy_epoch();
  f.farm.run_for(util::seconds(10));

  EXPECT_EQ(f.web_accepts, 1);
  EXPECT_EQ(answer, "inflight");
  EXPECT_EQ(f.sub->router().policy_table().epoch(), new_epoch);
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 0u);
  // Subsequent first contacts ride the reloaded table.
  EXPECT_EQ(f.exchange("after"), "after");
  EXPECT_GE(f.sub->router().table_hits(), 1u);
}

TEST(PolicyTableFarm, DisablingTheTableRestoresShimDecisions) {
  TableFarm f;
  f.bind(std::make_shared<cs::ForwardAllPolicy>());
  f.sub->router().set_policy_table_enabled(false);
  EXPECT_EQ(f.exchange("a"), "a");
  EXPECT_EQ(f.exchange("b"), "b");
  EXPECT_EQ(f.sub->containment().flows_decided(), 2u);
  EXPECT_EQ(f.sub->router().table_hits(), 0u);
  // Re-enabling picks the installed rules straight back up.
  f.sub->router().set_policy_table_enabled(true);
  EXPECT_EQ(f.exchange("c"), "c");
  EXPECT_EQ(f.sub->containment().flows_decided(), 2u);
  EXPECT_EQ(f.sub->router().table_hits(), 1u);
}

TEST(PolicyTableFarm, DatapathOptionsFlowThroughToEveryLayer) {
  core::FarmOptions options;
  options.datapath.fast_path = false;
  options.datapath.verdict_cache = false;
  options.datapath.verdict_cache_capacity = 7;
  options.datapath.policy_table = false;
  TableFarm f(options);
  EXPECT_FALSE(f.farm.gateway().fast_path());
  EXPECT_FALSE(f.sub->router().policy_table_enabled());
  EXPECT_FALSE(f.sub->router().config().verdict_cache_enabled);
  EXPECT_EQ(f.sub->router().config().verdict_cache_capacity, 7u);

  // With the table off, a compilable policy still works — every flow
  // just pays the shim round trip again.
  f.bind(std::make_shared<cs::ForwardAllPolicy>());
  EXPECT_EQ(f.exchange("slow"), "slow");
  EXPECT_EQ(f.sub->containment().flows_decided(), 1u);
  EXPECT_EQ(f.sub->router().table_hits(), 0u);
}

}  // namespace
}  // namespace gq
