// Property/fuzz tests for the wire parsers that face attacker-shaped
// bytes: the shim protocol codecs (shim::RequestShim / shim::ResponseShim
// / complete_shim_length) and the frame parsers (pkt::decode_frame and
// the zero-copy pkt::FrameView). Each suite runs 100k seeded cases built
// by mutating canonical encodings — truncation, padding, bit flips — plus
// purely random buffers. The property under test is "reject or parse,
// never crash or over-read": run these under the ASan preset
// (-DGQ_SANITIZE=address) to turn any out-of-bounds access into a
// failure. Everything is seeded through util::Rng, so a failing case
// replays bit-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "packet/frame.h"
#include "packet/frame_view.h"
#include "packet/headers.h"
#include "packet/pcap.h"
#include "shim/shim.h"
#include "util/rng.h"

namespace gq {
namespace {

constexpr int kCases = 100'000;

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
  return bytes;
}

// One mutation step: truncate, pad with garbage, or flip random bits.
void mutate(util::Rng& rng, std::vector<std::uint8_t>& buf) {
  switch (rng.below(3)) {
    case 0:  // Truncate to a random prefix (possibly empty).
      buf.resize(rng.below(buf.size() + 1));
      break;
    case 1: {  // Pad with up to 32 random trailing bytes.
      const auto pad = random_bytes(rng, 1 + rng.below(32));
      buf.insert(buf.end(), pad.begin(), pad.end());
      break;
    }
    case 2:  // Flip 1-8 random bits anywhere in the buffer.
      if (!buf.empty()) {
        const auto flips = 1 + rng.below(8);
        for (std::uint64_t i = 0; i < flips; ++i)
          buf[rng.below(buf.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
  }
}

util::Endpoint random_endpoint(util::Rng& rng) {
  return {util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
          static_cast<std::uint16_t>(rng.next())};
}

std::string random_text(util::Rng& rng, std::size_t max_len) {
  std::string text(rng.below(max_len + 1), '\0');
  for (auto& c : text) c = static_cast<char>(rng.next());
  return text;
}

TEST(FuzzShim, RequestShimRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0001);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(64));
    } else {
      shim::RequestShim req;
      req.orig = random_endpoint(rng);
      req.resp = random_endpoint(rng);
      req.vlan = static_cast<std::uint16_t>(rng.next());
      req.nonce_port = static_cast<std::uint16_t>(rng.next());
      buf = req.encode();
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    const auto parsed = shim::RequestShim::parse(buf);
    if (parsed) {
      // Whatever parsed must be self-consistent garbage, not wild reads.
      (void)parsed->orig;
      (void)parsed->resp;
      (void)parsed->vlan;
      (void)parsed->nonce_port;
    }
    if (const auto len =
            shim::complete_shim_length(buf, shim::kTypeRequest)) {
      ASSERT_LE(*len, buf.size());
      ASSERT_GE(*len, shim::kRequestShimSize);
    }
  }
}

TEST(FuzzShim, ResponseShimRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0002);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(160));
    } else {
      shim::ResponseShim resp;
      resp.orig = random_endpoint(rng);
      resp.resp = random_endpoint(rng);
      resp.verdict = static_cast<shim::Verdict>(1 + rng.below(8));
      resp.policy_name = random_text(rng, 40);  // Truncates past 32.
      if (rng.below(2) == 0)
        resp.limit_bytes_per_sec = static_cast<std::int64_t>(rng.next());
      resp.annotation = random_text(rng, 48);
      // Sweep the v3 cache block (cacheability flag, scope including an
      // out-of-range value the parser must reject, TTL, epoch) and emit
      // a mix of v2 and v3 frames so the parsers see both versions
      // interleaved the way a mid-upgrade farm would produce them.
      resp.cacheable = rng.below(2) == 0;
      resp.cache_scope = static_cast<shim::CacheScope>(rng.below(4));
      resp.cache_ttl_ms = static_cast<std::uint32_t>(rng.next());
      resp.policy_epoch = rng.next();
      if (rng.below(3) == 0) resp.wire_version = shim::kShimVersionV2;
      buf = resp.encode();
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    std::size_t consumed = 0;
    const auto parsed = shim::ResponseShim::parse(buf, &consumed);
    if (parsed) {
      // consumed must never exceed what we handed in (the over-read
      // property, checked structurally on top of ASan).
      ASSERT_LE(consumed, buf.size());
      ASSERT_GE(consumed, shim::kResponseShimMinSize);
      if (parsed->wire_version != shim::kShimVersionV2)
        ASSERT_GE(consumed, shim::kResponseShimV3MinSize);
      (void)parsed->verdict;
      (void)parsed->policy_name.size();
      (void)parsed->annotation.size();
      // Whatever parsed must satisfy the cache-block invariants: v2
      // frames are never cacheable and carry no epoch; any accepted
      // scope is one of the three defined values.
      if (parsed->wire_version == shim::kShimVersionV2) {
        ASSERT_FALSE(parsed->cacheable);
        ASSERT_EQ(parsed->policy_epoch, 0u);
        ASSERT_EQ(parsed->cache_ttl_ms, 0u);
      }
      ASSERT_LE(static_cast<std::uint8_t>(parsed->cache_scope),
                static_cast<std::uint8_t>(shim::CacheScope::kDstPort));
    }
    if (const auto len =
            shim::complete_shim_length(buf, shim::kTypeResponse)) {
      ASSERT_LE(*len, buf.size());
      ASSERT_GE(*len, shim::kResponseShimMinSize);
    }
  }
}

TEST(FuzzShim, ResponseTruncationNeverParsesEitherVersion) {
  // The stream-scanning contract that keeps the gateway synchronized:
  // any strict prefix of a well-formed response shim (v2 or v3) must be
  // rejected by parse() and complete_shim_length(), and the full frame
  // must be accepted with exactly its own length consumed.
  util::Rng rng(0xF00D0007);
  for (int i = 0; i < 512; ++i) {
    shim::ResponseShim resp;
    resp.orig = random_endpoint(rng);
    resp.resp = random_endpoint(rng);
    resp.verdict = static_cast<shim::Verdict>(1 + rng.below(6));
    resp.policy_name = random_text(rng, 32);
    resp.annotation = random_text(rng, 24);
    resp.cacheable = rng.below(2) == 0;
    resp.cache_scope = static_cast<shim::CacheScope>(rng.below(3));
    resp.cache_ttl_ms = static_cast<std::uint32_t>(rng.next());
    resp.policy_epoch = rng.next();
    if (rng.below(2) == 0) resp.wire_version = shim::kShimVersionV2;
    const auto full = resp.encode();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      std::span<const std::uint8_t> prefix(full.data(), cut);
      ASSERT_FALSE(shim::ResponseShim::parse(prefix)) << "cut=" << cut;
      ASSERT_FALSE(shim::complete_shim_length(prefix, shim::kTypeResponse))
          << "cut=" << cut;
    }
    std::size_t consumed = 0;
    ASSERT_TRUE(shim::ResponseShim::parse(full, &consumed));
    ASSERT_EQ(consumed, full.size());
  }
}

// Builds a canonical TCP or UDP frame the way the simulator would.
std::vector<std::uint8_t> random_canonical_frame(util::Rng& rng) {
  pkt::DecodedFrame frame;
  frame.eth.dst = util::MacAddr::local(static_cast<std::uint32_t>(rng.next()));
  frame.eth.src = util::MacAddr::local(static_cast<std::uint32_t>(rng.next()));
  if (rng.below(3) == 0)
    frame.eth.vlan = static_cast<std::uint16_t>(rng.below(4096));
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  pkt::Ipv4Packet ip;
  ip.src = util::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
  ip.dst = util::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
  ip.ttl = static_cast<std::uint8_t>(1 + rng.below(255));
  ip.ident = static_cast<std::uint16_t>(rng.next());
  if (rng.below(2) == 0) {
    ip.protocol = pkt::kProtoTcp;
    pkt::TcpSegment tcp;
    tcp.src_port = static_cast<std::uint16_t>(rng.next());
    tcp.dst_port = static_cast<std::uint16_t>(rng.next());
    tcp.seq = static_cast<std::uint32_t>(rng.next());
    tcp.ack = static_cast<std::uint32_t>(rng.next());
    tcp.flags = static_cast<std::uint8_t>(rng.next());
    tcp.payload = random_bytes(rng, rng.below(64));
    frame.tcp = std::move(tcp);
  } else {
    ip.protocol = pkt::kProtoUdp;
    pkt::UdpDatagram udp;
    udp.src_port = static_cast<std::uint16_t>(rng.next());
    udp.dst_port = static_cast<std::uint16_t>(rng.next());
    udp.payload = random_bytes(rng, rng.below(64));
    frame.udp = std::move(udp);
  }
  frame.ip = std::move(ip);
  return frame.encode();
}

TEST(FuzzFrame, DecodeFrameRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0003);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(128));
    } else {
      buf = random_canonical_frame(rng);
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    const auto decoded = pkt::decode_frame(buf);
    if (decoded) {
      // Re-encoding a decode must stay in bounds too.
      (void)decoded->encode();
      (void)decoded->src_port();
      (void)decoded->dst_port();
    }
  }
}

// --- pcap container -------------------------------------------------------

// A canonical multi-record capture to mutate.
std::vector<std::uint8_t> random_canonical_pcap(util::Rng& rng) {
  pkt::PcapWriter writer;
  const auto records = 1 + rng.below(6);
  for (std::uint64_t i = 0; i < records; ++i)
    writer.record(util::TimePoint{static_cast<std::int64_t>(rng.next() %
                                                            1'000'000)},
                  random_bytes(rng, rng.below(96)));
  return {writer.contents().begin(), writer.contents().end()};
}

TEST(FuzzPcap, ParseRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0005);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(256));
    } else {
      buf = random_canonical_pcap(rng);
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    // Reject or parse, never crash, never a giant allocation: every
    // record's caplen is bounded by the snap length.
    for (const auto& record : pkt::parse_pcap(buf)) {
      ASSERT_LE(record.frame.size(), pkt::kPcapSnapLen);
      ASSERT_LE(record.frame.size(), record.orig_len);
    }
  }
}

TEST(FuzzPcap, EveryTruncationYieldsExactValidPrefix) {
  // The documented truncation contract: cutting a capture anywhere
  // returns exactly the records that are structurally complete before
  // the cut — never fewer, never garbage from past it.
  util::Rng rng(0xF00D0006);
  pkt::PcapWriter writer;
  std::vector<std::size_t> frame_sizes;
  std::vector<std::size_t> record_ends;  // Byte offset after each record.
  std::size_t offset = pkt::kPcapFileHeaderSize;
  for (int i = 0; i < 8; ++i) {
    const auto frame = random_bytes(rng, 10 + rng.below(50));
    writer.record(util::TimePoint{i}, frame);
    frame_sizes.push_back(frame.size());
    offset += pkt::kPcapRecordHeaderSize + frame.size();
    record_ends.push_back(offset);
  }
  const std::vector<std::uint8_t> full(writer.contents().begin(),
                                       writer.contents().end());
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const auto parsed = pkt::parse_pcap(
        std::span<const std::uint8_t>(full.data(), cut));
    std::size_t expected = 0;
    while (expected < record_ends.size() && record_ends[expected] <= cut)
      ++expected;
    if (cut < pkt::kPcapFileHeaderSize) expected = 0;
    ASSERT_EQ(parsed.size(), expected) << "cut at byte " << cut;
    for (std::size_t r = 0; r < parsed.size(); ++r)
      ASSERT_EQ(parsed[r].frame.size(), frame_sizes[r]);
  }
}

TEST(FuzzFrame, FrameViewRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0004);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(128));
    } else {
      buf = random_canonical_frame(rng);
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    // kFull verifies both checksums — the strictest accept predicate.
    auto view = pkt::FrameView::parse(buf, pkt::ViewVerify::kFull);
    if (view) {
      (void)view->flow_key();
      (void)view->payload_len();
      if (view->is_tcp()) {
        (void)view->tcp_seq();
        (void)view->tcp_flags();
      }
      // In-place rewrites must only touch bytes inside the buffer; the
      // incremental checksum paths are the interesting write sites.
      view->set_ip_src(util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())));
      view->set_src_port(static_cast<std::uint16_t>(rng.next()));
      if (view->is_tcp())
        view->set_tcp_seq(static_cast<std::uint32_t>(rng.next()));
    }
    (void)pkt::vlan_vid_of(buf);
    (void)pkt::ipv4_dst_of(buf);
  }
}

}  // namespace
}  // namespace gq
