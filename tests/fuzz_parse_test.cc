// Property/fuzz tests for the wire parsers that face attacker-shaped
// bytes: the shim protocol codecs (shim::RequestShim / shim::ResponseShim
// / complete_shim_length) and the frame parsers (pkt::decode_frame and
// the zero-copy pkt::FrameView). Each suite runs 100k seeded cases built
// by mutating canonical encodings — truncation, padding, bit flips — plus
// purely random buffers. The property under test is "reject or parse,
// never crash or over-read": run these under the ASan preset
// (-DGQ_SANITIZE=address) to turn any out-of-bounds access into a
// failure. Everything is seeded through util::Rng, so a failing case
// replays bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "flowdb/flowdb.h"
#include "flowdb/store.h"
#include "gateway/policy_table.h"
#include "orchestrator/job.h"
#include "packet/frame.h"
#include "packet/frame_view.h"
#include "packet/headers.h"
#include "packet/pcap.h"
#include "shim/shim.h"
#include "shim/table_sync.h"
#include "util/rng.h"

namespace gq {
namespace {

constexpr int kCases = 100'000;

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
  return bytes;
}

// One mutation step: truncate, pad with garbage, or flip random bits.
void mutate(util::Rng& rng, std::vector<std::uint8_t>& buf) {
  switch (rng.below(3)) {
    case 0:  // Truncate to a random prefix (possibly empty).
      buf.resize(rng.below(buf.size() + 1));
      break;
    case 1: {  // Pad with up to 32 random trailing bytes.
      const auto pad = random_bytes(rng, 1 + rng.below(32));
      buf.insert(buf.end(), pad.begin(), pad.end());
      break;
    }
    case 2:  // Flip 1-8 random bits anywhere in the buffer.
      if (!buf.empty()) {
        const auto flips = 1 + rng.below(8);
        for (std::uint64_t i = 0; i < flips; ++i)
          buf[rng.below(buf.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
  }
}

util::Endpoint random_endpoint(util::Rng& rng) {
  return {util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
          static_cast<std::uint16_t>(rng.next())};
}

std::string random_text(util::Rng& rng, std::size_t max_len) {
  std::string text(rng.below(max_len + 1), '\0');
  for (auto& c : text) c = static_cast<char>(rng.next());
  return text;
}

TEST(FuzzShim, RequestShimRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0001);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(64));
    } else {
      shim::RequestShim req;
      req.orig = random_endpoint(rng);
      req.resp = random_endpoint(rng);
      req.vlan = static_cast<std::uint16_t>(rng.next());
      req.nonce_port = static_cast<std::uint16_t>(rng.next());
      buf = req.encode();
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    const auto parsed = shim::RequestShim::parse(buf);
    if (parsed) {
      // Whatever parsed must be self-consistent garbage, not wild reads.
      (void)parsed->orig;
      (void)parsed->resp;
      (void)parsed->vlan;
      (void)parsed->nonce_port;
    }
    if (const auto len =
            shim::complete_shim_length(buf, shim::kTypeRequest)) {
      ASSERT_LE(*len, buf.size());
      ASSERT_GE(*len, shim::kRequestShimSize);
    }
  }
}

TEST(FuzzShim, ResponseShimRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0002);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(160));
    } else {
      shim::ResponseShim resp;
      resp.orig = random_endpoint(rng);
      resp.resp = random_endpoint(rng);
      resp.verdict = static_cast<shim::Verdict>(1 + rng.below(8));
      resp.policy_name = random_text(rng, 40);  // Truncates past 32.
      if (rng.below(2) == 0)
        resp.limit_bytes_per_sec = static_cast<std::int64_t>(rng.next());
      resp.annotation = random_text(rng, 48);
      // Sweep the v3 cache block (cacheability flag, scope including an
      // out-of-range value the parser must reject, TTL, epoch) and emit
      // a mix of v2 and v3 frames so the parsers see both versions
      // interleaved the way a mid-upgrade farm would produce them.
      resp.cacheable = rng.below(2) == 0;
      resp.cache_scope = static_cast<shim::CacheScope>(rng.below(4));
      resp.cache_ttl_ms = static_cast<std::uint32_t>(rng.next());
      resp.policy_epoch = rng.next();
      if (rng.below(3) == 0) resp.wire_version = shim::kShimVersionV2;
      buf = resp.encode();
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    std::size_t consumed = 0;
    const auto parsed = shim::ResponseShim::parse(buf, &consumed);
    if (parsed) {
      // consumed must never exceed what we handed in (the over-read
      // property, checked structurally on top of ASan).
      ASSERT_LE(consumed, buf.size());
      ASSERT_GE(consumed, shim::kResponseShimMinSize);
      if (parsed->wire_version != shim::kShimVersionV2)
        ASSERT_GE(consumed, shim::kResponseShimV3MinSize);
      (void)parsed->verdict;
      (void)parsed->policy_name.size();
      (void)parsed->annotation.size();
      // Whatever parsed must satisfy the cache-block invariants: v2
      // frames are never cacheable and carry no epoch; any accepted
      // scope is one of the three defined values.
      if (parsed->wire_version == shim::kShimVersionV2) {
        ASSERT_FALSE(parsed->cacheable);
        ASSERT_EQ(parsed->policy_epoch, 0u);
        ASSERT_EQ(parsed->cache_ttl_ms, 0u);
      }
      ASSERT_LE(static_cast<std::uint8_t>(parsed->cache_scope),
                static_cast<std::uint8_t>(shim::CacheScope::kDstPort));
    }
    if (const auto len =
            shim::complete_shim_length(buf, shim::kTypeResponse)) {
      ASSERT_LE(*len, buf.size());
      ASSERT_GE(*len, shim::kResponseShimMinSize);
    }
  }
}

TEST(FuzzShim, ResponseTruncationNeverParsesEitherVersion) {
  // The stream-scanning contract that keeps the gateway synchronized:
  // any strict prefix of a well-formed response shim (v2 or v3) must be
  // rejected by parse() and complete_shim_length(), and the full frame
  // must be accepted with exactly its own length consumed.
  util::Rng rng(0xF00D0007);
  for (int i = 0; i < 512; ++i) {
    shim::ResponseShim resp;
    resp.orig = random_endpoint(rng);
    resp.resp = random_endpoint(rng);
    resp.verdict = static_cast<shim::Verdict>(1 + rng.below(6));
    resp.policy_name = random_text(rng, 32);
    resp.annotation = random_text(rng, 24);
    resp.cacheable = rng.below(2) == 0;
    resp.cache_scope = static_cast<shim::CacheScope>(rng.below(3));
    resp.cache_ttl_ms = static_cast<std::uint32_t>(rng.next());
    resp.policy_epoch = rng.next();
    if (rng.below(2) == 0) resp.wire_version = shim::kShimVersionV2;
    const auto full = resp.encode();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      std::span<const std::uint8_t> prefix(full.data(), cut);
      ASSERT_FALSE(shim::ResponseShim::parse(prefix)) << "cut=" << cut;
      ASSERT_FALSE(shim::complete_shim_length(prefix, shim::kTypeResponse))
          << "cut=" << cut;
    }
    std::size_t consumed = 0;
    ASSERT_TRUE(shim::ResponseShim::parse(full, &consumed));
    ASSERT_EQ(consumed, full.size());
  }
}

// --- shim wire v4: table-sync frames --------------------------------------

// A canonical compiled table the containment server could plausibly
// push: random epochs, freely overlapping prefixes/port ranges, every
// action opcode, names and annotations up to (and past) the wire caps.
shim::TableSync random_table_sync(util::Rng& rng) {
  shim::TableSync sync;
  sync.epoch = rng.next();
  const auto rules = rng.below(8);
  for (std::uint64_t i = 0; i < rules; ++i) {
    shim::TableRule rule;
    const auto v1 = static_cast<std::uint16_t>(rng.next());
    const auto v2 = static_cast<std::uint16_t>(rng.next());
    rule.vlan_first = std::min(v1, v2);
    rule.vlan_last = std::max(v1, v2);
    rule.dst_prefix = util::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    rule.prefix_len = static_cast<std::uint8_t>(rng.below(33));
    rule.proto = static_cast<std::uint8_t>(rng.below(3));
    const auto p1 = static_cast<std::uint16_t>(rng.next());
    const auto p2 = static_cast<std::uint16_t>(rng.next());
    rule.port_first = std::min(p1, p2);
    rule.port_last = std::max(p1, p2);
    rule.priority = static_cast<std::uint16_t>(rng.next());
    rule.action = static_cast<shim::TableAction>(1 + rng.below(6));
    rule.target = random_endpoint(rng);
    rule.limit_bytes_per_sec = rng.next();
    rule.policy_name = random_text(rng, 32);
    rule.annotation = random_text(rng, 48);
    sync.rules.push_back(std::move(rule));
  }
  return sync;
}

TEST(FuzzTableSync, ParseRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0008);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(256));
    } else {
      buf = random_table_sync(rng).encode();
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    const auto parsed = shim::TableSync::parse(buf);
    if (!parsed) continue;
    // Whatever survives mutation must still satisfy every structural
    // invariant the gateway's lookup path relies on — a bit-flipped
    // frame may parse, but never into an out-of-range rule.
    for (const auto& rule : parsed->rules) {
      const auto opcode = static_cast<std::uint8_t>(rule.action);
      ASSERT_GE(opcode, 1);
      ASSERT_LE(opcode, 6);
      ASSERT_LE(rule.prefix_len, 32);
      ASSERT_LE(rule.proto, shim::TableRule::kProtoUdp);
      ASSERT_LE(rule.vlan_first, rule.vlan_last);
      ASSERT_LE(rule.port_first, rule.port_last);
      ASSERT_LE(rule.policy_name.size(), 32u);
    }
    // An accepted frame must re-encode and re-parse to the same table
    // (the re-push path: the server repeats syncs over lossy UDP).
    const auto reparsed = shim::TableSync::parse(parsed->encode());
    ASSERT_TRUE(reparsed);
    ASSERT_EQ(reparsed->epoch, parsed->epoch);
    ASSERT_EQ(reparsed->rules.size(), parsed->rules.size());
  }
}

TEST(FuzzTableSync, InstallAndLookupNeverCrashOnFuzzedTables) {
  // End-to-end hardening: any table that parses must be installable,
  // and lookups against it (overlapping prefixes, inverted-feeling
  // ranges, hostile epochs) must return either nullptr or a rule that
  // genuinely matches the queried key.
  util::Rng rng(0xF00D0009);
  gw::PolicyTable table;
  for (int i = 0; i < 20'000; ++i) {
    auto buf = random_table_sync(rng).encode();
    const auto mutations = rng.below(3);
    for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    const auto parsed = shim::TableSync::parse(buf);
    if (parsed) (void)table.install(*parsed);  // Stale epochs may refuse.
    for (int q = 0; q < 4; ++q) {
      const auto vlan = static_cast<std::uint16_t>(rng.next());
      const auto proto = static_cast<std::uint8_t>(rng.below(3));
      const util::Endpoint dst = random_endpoint(rng);
      const auto* hit = table.lookup(vlan, proto, dst);
      if (hit) ASSERT_TRUE(hit->matches(vlan, proto, dst));
    }
  }
}

TEST(FuzzTableSync, EveryTruncationIsRejectedAndFullFrameConsumesExactly) {
  // The UDP framing contract: a datagram cut anywhere is rejected whole
  // (no partial tables are ever installed), and an intact frame parses.
  util::Rng rng(0xF00D000A);
  for (int i = 0; i < 256; ++i) {
    const auto full = random_table_sync(rng).encode();
    for (std::size_t cut = 0; cut < full.size(); ++cut)
      ASSERT_FALSE(shim::TableSync::parse(
          std::span<const std::uint8_t>(full.data(), cut)))
          << "cut=" << cut;
    ASSERT_TRUE(shim::TableSync::parse(full));
  }
}

// Builds a canonical TCP or UDP frame the way the simulator would.
std::vector<std::uint8_t> random_canonical_frame(util::Rng& rng) {
  pkt::DecodedFrame frame;
  frame.eth.dst = util::MacAddr::local(static_cast<std::uint32_t>(rng.next()));
  frame.eth.src = util::MacAddr::local(static_cast<std::uint32_t>(rng.next()));
  if (rng.below(3) == 0)
    frame.eth.vlan = static_cast<std::uint16_t>(rng.below(4096));
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  pkt::Ipv4Packet ip;
  ip.src = util::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
  ip.dst = util::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
  ip.ttl = static_cast<std::uint8_t>(1 + rng.below(255));
  ip.ident = static_cast<std::uint16_t>(rng.next());
  if (rng.below(2) == 0) {
    ip.protocol = pkt::kProtoTcp;
    pkt::TcpSegment tcp;
    tcp.src_port = static_cast<std::uint16_t>(rng.next());
    tcp.dst_port = static_cast<std::uint16_t>(rng.next());
    tcp.seq = static_cast<std::uint32_t>(rng.next());
    tcp.ack = static_cast<std::uint32_t>(rng.next());
    tcp.flags = static_cast<std::uint8_t>(rng.next());
    tcp.payload = random_bytes(rng, rng.below(64));
    frame.tcp = std::move(tcp);
  } else {
    ip.protocol = pkt::kProtoUdp;
    pkt::UdpDatagram udp;
    udp.src_port = static_cast<std::uint16_t>(rng.next());
    udp.dst_port = static_cast<std::uint16_t>(rng.next());
    udp.payload = random_bytes(rng, rng.below(64));
    frame.udp = std::move(udp);
  }
  frame.ip = std::move(ip);
  return frame.encode();
}

TEST(FuzzFrame, DecodeFrameRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0003);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(128));
    } else {
      buf = random_canonical_frame(rng);
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    const auto decoded = pkt::decode_frame(buf);
    if (decoded) {
      // Re-encoding a decode must stay in bounds too.
      (void)decoded->encode();
      (void)decoded->src_port();
      (void)decoded->dst_port();
    }
  }
}

// --- pcap container -------------------------------------------------------

// A canonical multi-record capture to mutate.
std::vector<std::uint8_t> random_canonical_pcap(util::Rng& rng) {
  pkt::PcapWriter writer;
  const auto records = 1 + rng.below(6);
  for (std::uint64_t i = 0; i < records; ++i)
    writer.record(util::TimePoint{static_cast<std::int64_t>(rng.next() %
                                                            1'000'000)},
                  random_bytes(rng, rng.below(96)));
  return {writer.contents().begin(), writer.contents().end()};
}

TEST(FuzzPcap, ParseRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0005);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(256));
    } else {
      buf = random_canonical_pcap(rng);
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    // Reject or parse, never crash, never a giant allocation: every
    // record's caplen is bounded by the snap length.
    for (const auto& record : pkt::parse_pcap(buf)) {
      ASSERT_LE(record.frame.size(), pkt::kPcapSnapLen);
      ASSERT_LE(record.frame.size(), record.orig_len);
    }
  }
}

TEST(FuzzPcap, EveryTruncationYieldsExactValidPrefix) {
  // The documented truncation contract: cutting a capture anywhere
  // returns exactly the records that are structurally complete before
  // the cut — never fewer, never garbage from past it.
  util::Rng rng(0xF00D0006);
  pkt::PcapWriter writer;
  std::vector<std::size_t> frame_sizes;
  std::vector<std::size_t> record_ends;  // Byte offset after each record.
  std::size_t offset = pkt::kPcapFileHeaderSize;
  for (int i = 0; i < 8; ++i) {
    const auto frame = random_bytes(rng, 10 + rng.below(50));
    writer.record(util::TimePoint{i}, frame);
    frame_sizes.push_back(frame.size());
    offset += pkt::kPcapRecordHeaderSize + frame.size();
    record_ends.push_back(offset);
  }
  const std::vector<std::uint8_t> full(writer.contents().begin(),
                                       writer.contents().end());
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const auto parsed = pkt::parse_pcap(
        std::span<const std::uint8_t>(full.data(), cut));
    std::size_t expected = 0;
    while (expected < record_ends.size() && record_ends[expected] <= cut)
      ++expected;
    if (cut < pkt::kPcapFileHeaderSize) expected = 0;
    ASSERT_EQ(parsed.size(), expected) << "cut at byte " << cut;
    for (std::size_t r = 0; r < parsed.size(); ++r)
      ASSERT_EQ(parsed[r].frame.size(), frame_sizes[r]);
  }
}

TEST(FuzzFrame, FrameViewRejectsOrParsesNeverCrashes) {
  util::Rng rng(0xF00D0004);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(128));
    } else {
      buf = random_canonical_frame(rng);
      const auto mutations = 1 + rng.below(3);
      for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
    }
    // kFull verifies both checksums — the strictest accept predicate.
    auto view = pkt::FrameView::parse(buf, pkt::ViewVerify::kFull);
    if (view) {
      (void)view->flow_key();
      (void)view->payload_len();
      if (view->is_tcp()) {
        (void)view->tcp_seq();
        (void)view->tcp_flags();
      }
      // In-place rewrites must only touch bytes inside the buffer; the
      // incremental checksum paths are the interesting write sites.
      view->set_ip_src(util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())));
      view->set_src_port(static_cast<std::uint16_t>(rng.next()));
      if (view->is_tcp())
        view->set_tcp_seq(static_cast<std::uint32_t>(rng.next()));
    }
    (void)pkt::vlan_vid_of(buf);
    (void)pkt::ipv4_dst_of(buf);
  }
}

// --- detonation-job specs -------------------------------------------------

// The JobSpec line parser faces operator/tenant-shaped text rather than
// wire bytes, so the mutations here are textual: token shuffles, random
// splices, charset violations. The properties mirror the codec suites —
// reject or parse, never crash — plus the parser's own contract: any
// accepted spec honors the field caps and round-trips byte-identically
// through str().

const char kIdentChars[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";

std::string random_ident(util::Rng& rng, std::size_t max_len) {
  std::string s(1 + rng.below(max_len), '\0');
  for (auto& c : s) c = kIdentChars[rng.below(sizeof(kIdentChars) - 1)];
  return s;
}

// Printable ASCII, no whitespace, no '=' — the sample-name charset.
std::string random_sample_name(util::Rng& rng) {
  std::string s(1 + rng.below(orch::kMaxSampleLen), '\0');
  for (auto& c : s) {
    do {
      c = static_cast<char>('!' + rng.below('~' - '!' + 1));
    } while (c == '=');
  }
  return s;
}

orch::JobSpec random_valid_spec(util::Rng& rng) {
  orch::JobSpec spec;
  spec.tenant = random_ident(rng, orch::kMaxTenantLen);
  spec.sample = random_sample_name(rng);
  spec.profile = random_ident(rng, orch::kMaxProfileLen);
  spec.budget = util::milliseconds(
      orch::kMinBudgetMs +
      static_cast<std::int64_t>(
          rng.below(orch::kMaxBudgetMs - orch::kMinBudgetMs + 1)));
  return spec;
}

// One textual mutation step: drop/duplicate/shuffle tokens, splice
// random bytes, or flip characters in place.
void mutate_line(util::Rng& rng, std::string& line) {
  switch (rng.below(5)) {
    case 0: {  // Truncate to a random prefix.
      line.resize(rng.below(line.size() + 1));
      break;
    }
    case 1: {  // Splice random bytes (incl. NUL/non-ASCII) anywhere.
      const auto bytes = random_bytes(rng, 1 + rng.below(16));
      line.insert(line.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(line.size() + 1)),
                  bytes.begin(), bytes.end());
      break;
    }
    case 2: {  // Flip 1-4 characters.
      if (!line.empty()) {
        const auto flips = 1 + rng.below(4);
        for (std::uint64_t i = 0; i < flips; ++i)
          line[rng.below(line.size())] ^=
              static_cast<char>(1u << rng.below(8));
      }
      break;
    }
    case 3: {  // Duplicate a whitespace-delimited token (dup-key reject).
      const std::size_t start = rng.below(line.size() + 1);
      const std::size_t from = line.find_first_not_of(' ', start);
      if (from == std::string::npos) break;
      const std::size_t to = std::min(line.find(' ', from), line.size());
      line += ' ';
      line += line.substr(from, to - from);
      break;
    }
    case 4: {  // Perturb whitespace: tabs, runs, leading/trailing pad.
      line.insert(rng.below(line.size() + 1),
                  std::string(1 + rng.below(4), rng.below(2) ? ' ' : '\t'));
      break;
    }
  }
}

TEST(FuzzJobSpec, EveryValidSpecRoundTripsThroughItsCanonicalLine) {
  util::Rng rng(0xF00D000B);
  for (int i = 0; i < kCases; ++i) {
    const orch::JobSpec spec = random_valid_spec(rng);
    const std::string line = spec.str();
    const auto parsed = orch::JobSpec::parse(line);
    ASSERT_TRUE(parsed) << line;
    ASSERT_EQ(*parsed, spec) << line;
    // Canonical form is a fixed point.
    ASSERT_EQ(parsed->str(), line);
  }
}

TEST(FuzzJobSpec, MutatedLinesRejectOrParseWithCapsHonored) {
  util::Rng rng(0xF00D000C);
  for (int i = 0; i < kCases; ++i) {
    std::string line = random_valid_spec(rng).str();
    const auto mutations = 1 + rng.below(3);
    for (std::uint64_t m = 0; m < mutations; ++m) mutate_line(rng, line);
    const auto parsed = orch::JobSpec::parse(line);
    if (!parsed) continue;
    // Whatever survives mutation must satisfy every documented cap —
    // oversized fields are rejected, never truncated into acceptance.
    ASSERT_FALSE(parsed->tenant.empty());
    ASSERT_LE(parsed->tenant.size(), orch::kMaxTenantLen);
    ASSERT_FALSE(parsed->sample.empty());
    ASSERT_LE(parsed->sample.size(), orch::kMaxSampleLen);
    ASSERT_LE(parsed->profile.size(), orch::kMaxProfileLen);
    ASSERT_GE(parsed->budget.usec, orch::kMinBudgetMs * 1000);
    ASSERT_LE(parsed->budget.usec, orch::kMaxBudgetMs * 1000);
    // And an accepted spec re-parses from its canonical line unchanged
    // (the resubmission path: specs are archived and replayed as text).
    const auto reparsed = orch::JobSpec::parse(parsed->str());
    ASSERT_TRUE(reparsed) << parsed->str();
    ASSERT_EQ(*reparsed, *parsed);
  }
}

TEST(FuzzJobSpec, RandomGarbageNeverCrashesAndRarelyParses) {
  util::Rng rng(0xF00D000D);
  for (int i = 0; i < kCases; ++i) {
    const auto bytes = random_bytes(rng, rng.below(160));
    const std::string line(bytes.begin(), bytes.end());
    const auto parsed = orch::JobSpec::parse(line);
    if (parsed) {
      // Anything accepted from noise must still be a lawful spec.
      ASSERT_FALSE(parsed->tenant.empty());
      ASSERT_LE(parsed->tenant.size(), orch::kMaxTenantLen);
      ASSERT_TRUE(orch::JobSpec::parse(parsed->str()));
    }
  }
}

// --- flows.txt loader (trace::parse_flow_record_line) ---------------------

trace::FlowRecord random_flow_record(util::Rng& rng) {
  trace::FlowRecord record;
  record.key.proto =
      rng.chance(0.5) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
  record.key.src = random_endpoint(rng);
  record.key.dst = random_endpoint(rng);
  record.vlan = static_cast<std::uint16_t>(rng.next());
  record.packets = rng.below(1u << 20);
  record.bytes = rng.below(1u << 30);
  record.first_time.usec = rng.range(-1'000'000, 1'000'000'000);
  record.last_time.usec = rng.range(-1'000'000, 1'000'000'000);
  if (rng.chance(0.7)) {
    record.has_verdict = true;
    record.verdict = static_cast<shim::Verdict>(1 + rng.below(6));
    record.verdict_source = static_cast<shim::VerdictSource>(rng.below(3));
    record.verdict_cached =
        record.verdict_source == shim::VerdictSource::kCached;
    record.policy_name = "p" + std::to_string(rng.below(100));
  }
  if (rng.chance(0.5)) record.tenant = "t" + std::to_string(rng.below(16));
  record.job = rng.below(1u << 16);
  const auto locs = rng.below(5);
  for (std::uint64_t l = 0; l < locs; ++l)
    record.locations.push_back({rng.below(64), rng.below(1u << 20)});
  return record;
}

TEST(FuzzFlowLine, MutatedLinesRejectOrParseNeverCrash) {
  util::Rng rng(0xF00D000E);
  for (int i = 0; i < kCases; ++i) {
    std::string line = trace::flow_record_line(random_flow_record(rng));
    const auto mutations = 1 + rng.below(3);
    for (std::uint64_t m = 0; m < mutations; ++m) mutate_line(rng, line);
    const auto parsed = trace::parse_flow_record_line(line);
    if (!parsed) continue;
    // Whatever survives must round-trip through the canonical
    // serializer unchanged (archives are rewritten as text on save).
    const auto reparsed =
        trace::parse_flow_record_line(trace::flow_record_line(*parsed));
    ASSERT_TRUE(reparsed) << line;
    ASSERT_EQ(*reparsed, *parsed) << line;
  }
}

TEST(FuzzFlowLine, CanonicalLinesAlwaysRoundTrip) {
  util::Rng rng(0xF00D000F);
  for (int i = 0; i < kCases; ++i) {
    const auto record = random_flow_record(rng);
    const auto parsed =
        trace::parse_flow_record_line(trace::flow_record_line(record));
    ASSERT_TRUE(parsed);
    ASSERT_EQ(*parsed, record);
  }
}

TEST(FuzzFlowLine, RandomGarbageNeverCrashes) {
  util::Rng rng(0xF00D0010);
  for (int i = 0; i < kCases; ++i) {
    const auto bytes = random_bytes(rng, rng.below(200));
    const std::string line(bytes.begin(), bytes.end());
    const auto parsed = trace::parse_flow_record_line(line);
    if (parsed) {
      // Lawful values only: ports/VLAN fit their types by construction,
      // counters are never negative (they parsed through range gates).
      (void)parsed->key;
      (void)parsed->locations;
    }
  }
}

// --- FlowDB reader (flowdb::Reader::parse) --------------------------------

std::vector<std::uint8_t> random_store(util::Rng& rng) {
  flowdb::Writer writer;
  const auto rows = rng.below(12);
  for (std::uint64_t r = 0; r < rows; ++r) {
    flowdb::Row row;
    row.proto = rng.chance(0.5) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
    row.src = random_endpoint(rng);
    row.dst = random_endpoint(rng);
    row.vlan = static_cast<std::uint16_t>(rng.next());
    row.tenant = rng.chance(0.5) ? "acme" : "";
    row.job = rng.below(64);
    row.verdict = static_cast<std::uint8_t>(rng.below(7));
    row.source = static_cast<std::uint8_t>(rng.below(3));
    row.policy = rng.chance(0.5) ? "default" : "";
    row.tap = "fuzz";
    row.packets = rng.below(1000);
    row.bytes = rng.below(100000);
    row.first_usec = rng.range(0, 1'000'000);
    row.last_usec = rng.range(0, 1'000'000);
    const auto locs = rng.below(3);
    for (std::uint64_t l = 0; l < locs; ++l)
      row.locations.push_back({rng.below(8), rng.below(4096)});
    writer.add(std::move(row));
  }
  return writer.encode();
}

/// Corrupt one aligned u64 anywhere in the file, then re-seal the
/// footer hash — a "self-declared-length lie" the integrity check
/// cannot catch, forcing the structural validation to do the work.
void corrupt_and_reseal(util::Rng& rng, std::vector<std::uint8_t>& buf) {
  if (buf.size() < 104) return;
  const std::uint64_t slot = rng.below((buf.size() - 16) / 8);
  std::uint64_t value = rng.next();
  if (rng.chance(0.5)) value = rng.below(2 * buf.size());  // Plausible sizes.
  std::memcpy(buf.data() + slot * 8, &value, 8);
  const std::uint64_t footer_offset = buf.size() - 16;
  const std::uint64_t hash = flowdb::fnv1a({buf.data(), footer_offset});
  std::memcpy(buf.data() + footer_offset, &hash, 8);
}

TEST(FuzzFlowDb, MutatedStoresRejectOrParseNeverCrash) {
  util::Rng rng(0xF00D0011);
  for (int i = 0; i < kCases; ++i) {
    std::vector<std::uint8_t> buf;
    if (rng.below(4) == 0) {
      buf = random_bytes(rng, rng.below(256));
    } else {
      buf = random_store(rng);
      if (rng.chance(0.5)) {
        corrupt_and_reseal(rng, buf);
      } else {
        const auto mutations = 1 + rng.below(3);
        for (std::uint64_t m = 0; m < mutations; ++m) mutate(rng, buf);
      }
    }
    const auto reader = flowdb::Reader::parse(std::move(buf));
    if (!reader) continue;
    // Whatever parsed must be fully walkable: every row, every column,
    // every dictionary string, every location list — no wild reads
    // (the ASan/UBSan presets turn violations into failures).
    std::uint64_t checksum = 0;
    for (std::uint64_t r = 0; r < reader->rows(); ++r) {
      const auto row = reader->row(r);
      checksum += row.packets + row.bytes + row.tenant.size() +
                  row.policy.size() + row.tap.size() + row.locations.size();
    }
    for (std::uint32_t d = 0; d < reader->dict_size(); ++d)
      checksum += reader->dict(d).size();
    (void)checksum;
  }
}

TEST(FuzzFlowDb, CanonicalStoresAlwaysParse) {
  util::Rng rng(0xF00D0012);
  for (int i = 0; i < 2'000; ++i) {
    auto buf = random_store(rng);
    const auto size = buf.size();
    const auto reader = flowdb::Reader::parse(std::move(buf));
    ASSERT_TRUE(reader) << "store " << i << " (" << size << " bytes)";
  }
}

TEST(FuzzFlowDb, ResealedZoneLiesAreDetectedOrHarmless) {
  // The skip-scan trust boundary: rewrite bytes inside the zone block
  // (ZoneMap min/max bounds, the tenant/endpoint bloom, ChunkZone time
  // bounds) and re-seal the footer hash so integrity checking alone
  // cannot catch it. The reader recomputes the zone from the columns at
  // validation, so any actual change must reject at parse — a lying
  // zone map never survives to mislead the pruning planner. A rewrite
  // that happens to restore the original bytes must still parse.
  util::Rng rng(0xF00D0013);
  for (int i = 0; i < kCases; ++i) {
    auto buf = random_store(rng);
    flowdb::FileHeader header;
    std::memcpy(&header, buf.data(), sizeof header);
    ASSERT_GE(header.zone_bytes, sizeof(flowdb::ZoneMap));
    const std::size_t zone_begin = header.zone_offset;
    const std::size_t zone_end = zone_begin + header.zone_bytes;
    const auto original = buf;
    const auto pokes = 1 + rng.below(4);
    for (std::uint64_t p = 0; p < pokes; ++p) {
      const std::size_t at = zone_begin + rng.below(zone_end - zone_begin);
      buf[at] = static_cast<std::uint8_t>(rng.next());
    }
    const std::size_t footer_offset = buf.size() - 16;
    const std::uint64_t resealed =
        flowdb::fnv1a({buf.data(), footer_offset});
    std::memcpy(buf.data() + footer_offset, &resealed, 8);
    const bool changed = !std::equal(buf.begin() + zone_begin,
                                     buf.begin() + zone_end,
                                     original.begin() + zone_begin);
    const auto reader = flowdb::Reader::parse(std::move(buf));
    if (changed) {
      ASSERT_FALSE(reader) << "case " << i << ": a resealed zone lie parsed";
    } else {
      ASSERT_TRUE(reader) << "case " << i;
    }
  }
}

// --- FlowDB store manifest (flowdb::StoreManifest::parse) -----------------

flowdb::StoreManifest random_manifest(util::Rng& rng) {
  flowdb::StoreManifest manifest;
  std::set<std::string> names;
  const auto n = rng.below(6);
  for (std::uint64_t i = 0; i < n; ++i) {
    flowdb::SegmentInfo info;
    // Mostly the generated pattern, sometimes an arbitrary lawful name
    // (first char forced alphanumeric; the ident charset allows '.'
    // and '-' elsewhere).
    info.file = rng.chance(0.7)
                    ? "segment-" + std::to_string(100000 + i) + ".fdb"
                    : "s" + random_ident(rng, 16) + ".fdb";
    // The ident charset allows '.', so an ident ending in '.' would
    // form a (rejected) ".." with the extension — lawful names only.
    if (info.file.find("..") != std::string::npos) continue;
    if (!names.insert(info.file).second) continue;
    info.rows = rng.below(1u << 20);
    info.bytes = rng.below(1u << 30);
    info.footer_hash = rng.next();
    info.zone_hash = rng.next();
    manifest.segments.push_back(std::move(info));
  }
  return manifest;
}

TEST(FuzzManifest, CanonicalManifestsAlwaysRoundTrip) {
  util::Rng rng(0xF00D0014);
  for (int i = 0; i < kCases; ++i) {
    const auto manifest = random_manifest(rng);
    const auto text = manifest.serialize();
    const auto parsed = flowdb::StoreManifest::parse(text);
    ASSERT_TRUE(parsed) << text;
    ASSERT_EQ(parsed->segments, manifest.segments) << text;
    // Canonical form is a fixed point.
    ASSERT_EQ(parsed->serialize(), text);
  }
}

TEST(FuzzManifest, MutatedManifestsRejectOrParseWithLawfulNames) {
  util::Rng rng(0xF00D0015);
  for (int i = 0; i < kCases; ++i) {
    std::string text = random_manifest(rng).serialize();
    const auto mutations = 1 + rng.below(3);
    for (std::uint64_t m = 0; m < mutations; ++m) mutate_line(rng, text);
    const auto parsed = flowdb::StoreManifest::parse(text);
    if (!parsed) continue;
    // Whatever survives mutation must honor the path-safety contract
    // the store relies on: one relative component, conservative
    // charset, no dotfiles, no traversal, no duplicates.
    std::set<std::string> seen;
    for (const auto& seg : parsed->segments) {
      ASSERT_FALSE(seg.file.empty());
      ASSERT_LE(seg.file.size(), 200u);
      ASSERT_EQ(seg.file.find('/'), std::string::npos) << seg.file;
      ASSERT_EQ(seg.file.find(".."), std::string::npos) << seg.file;
      ASSERT_NE(seg.file.front(), '.') << seg.file;
      ASSERT_NE(seg.file.front(), '-') << seg.file;
      ASSERT_TRUE(seen.insert(seg.file).second) << seg.file;
    }
    // An accepted manifest re-serializes and re-parses unchanged (the
    // store rewrites the manifest on every append/compaction).
    const auto reparsed = flowdb::StoreManifest::parse(parsed->serialize());
    ASSERT_TRUE(reparsed);
    ASSERT_EQ(reparsed->segments, parsed->segments);
  }
}

TEST(FuzzManifest, RandomGarbageNeverCrashesAndRarelyParses) {
  util::Rng rng(0xF00D0016);
  for (int i = 0; i < kCases; ++i) {
    const auto bytes = random_bytes(rng, rng.below(300));
    const std::string text(bytes.begin(), bytes.end());
    const auto parsed = flowdb::StoreManifest::parse(text);
    if (parsed) {
      // Garbage that parses must still be lawful and round-trip.
      for (const auto& seg : parsed->segments)
        ASSERT_EQ(seg.file.find('/'), std::string::npos);
      ASSERT_TRUE(flowdb::StoreManifest::parse(parsed->serialize()));
    }
  }
}

}  // namespace
}  // namespace gq
