// Unit tests for src/packet: header round-trips, checksum correctness,
// malformed-input rejection, frame decode/encode, flow keys, pcap output.
#include <gtest/gtest.h>

#include "packet/checksum.h"
#include "packet/frame.h"
#include "packet/headers.h"
#include "packet/pcap.h"
#include "util/rng.h"

namespace gq::pkt {
namespace {

using util::Ipv4Addr;
using util::MacAddr;

TEST(Checksum, KnownVector) {
  // Classic RFC 1071 example data.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(checksum(data), 0xFFFF - ((0x0001 + 0xf203 + 0xf4f5 + 0xf6f7) %
                                      0xFFFF));
}

TEST(Checksum, OddLengthPadded) {
  const std::uint8_t data[] = {0xAB};
  EXPECT_EQ(checksum(data), static_cast<std::uint16_t>(~0xAB00u));
}

TEST(Checksum, WordAtATimeMatchesScalarReference) {
  // The shipping checksum accumulates 64 bits at a time; the byte-pair
  // scalar version is kept as the oracle. Exercise every length residue
  // (mod 8) and varied contents, including carry-heavy 0xFF runs.
  util::Rng rng(0xC5C5);
  for (std::size_t len = 0; len <= 64; ++len) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(checksum(data), checksum_reference(data)) << "len=" << len;
  }
  for (const std::size_t len : {65u, 511u, 512u, 513u, 1459u, 1460u}) {
    std::vector<std::uint8_t> random(len), ones(len, 0xFF), zero(len, 0x00);
    for (auto& b : random) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(checksum(random), checksum_reference(random)) << len;
    EXPECT_EQ(checksum(ones), checksum_reference(ones)) << len;
    EXPECT_EQ(checksum(zero), checksum_reference(zero)) << len;
  }
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  // RFC 1624 eqn. 3: patch one 16-bit word and update the checksum
  // incrementally; must equal a full recompute over the new buffer.
  util::Rng rng(0x1624);
  std::vector<std::uint8_t> data(40);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint16_t before = checksum(data);
    const std::size_t at = (rng.next() % (data.size() / 2)) * 2;
    const std::uint16_t old_word =
        static_cast<std::uint16_t>((data[at] << 8) | data[at + 1]);
    const std::uint16_t new_word = static_cast<std::uint16_t>(rng.next());
    data[at] = static_cast<std::uint8_t>(new_word >> 8);
    data[at + 1] = static_cast<std::uint8_t>(new_word);
    const std::uint16_t updated =
        checksum_update(before, old_word, new_word);
    // Compare in sum-space: 0x0000 and 0xFFFF encode the same
    // one's-complement sum, and real headers never sum to it anyway.
    const std::uint16_t full = checksum(data);
    const bool equal = updated == full ||
                       (updated == 0xFFFF && full == 0) ||
                       (updated == 0 && full == 0xFFFF);
    EXPECT_TRUE(equal) << "trial " << trial << ": incremental 0x"
                       << std::hex << updated << " vs full 0x" << full;
  }
}

TEST(Checksum, ZeroOverValidPacket) {
  // A buffer whose stored checksum is correct sums to zero.
  Ipv4Packet ip;
  ip.src = Ipv4Addr(10, 0, 0, 1);
  ip.dst = Ipv4Addr(10, 0, 0, 2);
  ip.protocol = kProtoTcp;
  auto bytes = serialize_ipv4(ip);
  EXPECT_EQ(checksum(std::span(bytes).subspan(0, 20)), 0);
}

TEST(Ipv4, RoundTrip) {
  Ipv4Packet ip;
  ip.src = Ipv4Addr(192, 168, 1, 1);
  ip.dst = Ipv4Addr(8, 8, 8, 8);
  ip.protocol = kProtoUdp;
  ip.ttl = 17;
  ip.ident = 0x4242;
  ip.payload = {1, 2, 3, 4, 5};
  auto bytes = serialize_ipv4(ip);
  auto parsed = parse_ipv4(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src, ip.src);
  EXPECT_EQ(parsed->dst, ip.dst);
  EXPECT_EQ(parsed->protocol, kProtoUdp);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->ident, 0x4242);
  EXPECT_EQ(parsed->payload, ip.payload);
}

TEST(Ipv4, CorruptChecksumRejected) {
  Ipv4Packet ip;
  ip.src = Ipv4Addr(1, 1, 1, 1);
  ip.dst = Ipv4Addr(2, 2, 2, 2);
  auto bytes = serialize_ipv4(ip);
  bytes[10] ^= 0xFF;
  EXPECT_FALSE(parse_ipv4(bytes));
  EXPECT_TRUE(parse_ipv4(bytes, /*verify_checksum=*/false));
}

TEST(Ipv4, TruncatedRejected) {
  Ipv4Packet ip;
  ip.src = Ipv4Addr(1, 1, 1, 1);
  ip.dst = Ipv4Addr(2, 2, 2, 2);
  ip.payload = {9, 9, 9};
  auto bytes = serialize_ipv4(ip);
  bytes.resize(10);
  EXPECT_FALSE(parse_ipv4(bytes));
}

TEST(Tcp, RoundTrip) {
  const Ipv4Addr src(10, 0, 0, 23), dst(192, 150, 187, 12);
  TcpSegment tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  tcp.seq = 0xAABBCCDD;
  tcp.ack = 0x11223344;
  tcp.flags = kTcpSyn | kTcpAck;
  tcp.window = 4096;
  tcp.payload = {'G', 'E', 'T'};
  auto bytes = serialize_tcp(src, dst, tcp);
  auto parsed = parse_tcp(src, dst, bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 1234);
  EXPECT_EQ(parsed->dst_port, 80);
  EXPECT_EQ(parsed->seq, 0xAABBCCDDu);
  EXPECT_EQ(parsed->ack, 0x11223344u);
  EXPECT_TRUE(parsed->syn());
  EXPECT_TRUE(parsed->has_ack());
  EXPECT_FALSE(parsed->fin());
  EXPECT_EQ(parsed->window, 4096);
  EXPECT_EQ(parsed->payload, tcp.payload);
}

TEST(Tcp, ChecksumBindsAddresses) {
  // A segment is only valid for the address pair it was built with —
  // this is what forces the gateway to recompute checksums when NATing.
  const Ipv4Addr src(10, 0, 0, 23), dst(192, 150, 187, 12);
  TcpSegment tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  auto bytes = serialize_tcp(src, dst, tcp);
  EXPECT_TRUE(parse_tcp(src, dst, bytes));
  EXPECT_FALSE(parse_tcp(src, Ipv4Addr(9, 9, 9, 9), bytes));
}

TEST(Udp, RoundTrip) {
  const Ipv4Addr src(10, 0, 0, 1), dst(10, 0, 0, 2);
  UdpDatagram udp;
  udp.src_port = 5353;
  udp.dst_port = 53;
  udp.payload = {0xDE, 0xAD};
  auto bytes = serialize_udp(src, dst, udp);
  auto parsed = parse_udp(src, dst, bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 5353);
  EXPECT_EQ(parsed->dst_port, 53);
  EXPECT_EQ(parsed->payload, udp.payload);
}

TEST(Udp, BadChecksumRejected) {
  const Ipv4Addr src(10, 0, 0, 1), dst(10, 0, 0, 2);
  UdpDatagram udp;
  udp.payload = {1};
  auto bytes = serialize_udp(src, dst, udp);
  bytes.back() ^= 0x55;
  EXPECT_FALSE(parse_udp(src, dst, bytes));
}

TEST(Arp, RoundTrip) {
  ArpMessage arp;
  arp.op = ArpMessage::Op::kReply;
  arp.sender_mac = MacAddr::local(1);
  arp.sender_ip = Ipv4Addr(10, 0, 0, 1);
  arp.target_mac = MacAddr::local(2);
  arp.target_ip = Ipv4Addr(10, 0, 0, 2);
  auto bytes = serialize_arp(arp);
  EXPECT_EQ(bytes.size(), 28u);
  auto parsed = parse_arp(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->op, ArpMessage::Op::kReply);
  EXPECT_EQ(parsed->sender_ip, arp.sender_ip);
  EXPECT_EQ(parsed->target_mac, arp.target_mac);
}

TEST(Icmp, RoundTrip) {
  IcmpMessage icmp;
  icmp.type = 8;  // Echo request.
  icmp.ident = 77;
  icmp.sequence = 3;
  icmp.payload = {0xCA, 0xFE};
  auto bytes = serialize_icmp(icmp);
  auto parsed = parse_icmp(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, 8);
  EXPECT_EQ(parsed->ident, 77);
  EXPECT_EQ(parsed->payload, icmp.payload);
}

TEST(Eth, UntaggedRoundTrip) {
  EthHeader eth;
  eth.dst = MacAddr::broadcast();
  eth.src = MacAddr::local(5);
  eth.ethertype = kEtherTypeIpv4;
  std::vector<std::uint8_t> payload = {1, 2, 3};
  auto bytes = serialize_eth(eth, payload);
  EXPECT_EQ(bytes.size(), 17u);
  std::span<const std::uint8_t> rest;
  auto parsed = parse_eth(bytes, &rest);
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->vlan);
  EXPECT_EQ(parsed->ethertype, kEtherTypeIpv4);
  EXPECT_EQ(rest.size(), 3u);
}

TEST(Eth, VlanTagRoundTrip) {
  EthHeader eth;
  eth.dst = MacAddr::local(1);
  eth.src = MacAddr::local(2);
  eth.vlan = 42;
  eth.ethertype = kEtherTypeIpv4;
  auto bytes = serialize_eth(eth, {});
  EXPECT_EQ(bytes.size(), 18u);
  auto parsed = parse_eth(bytes, nullptr);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->vlan);
  EXPECT_EQ(*parsed->vlan, 42);
  EXPECT_EQ(parsed->ethertype, kEtherTypeIpv4);
}

TEST(Frame, DecodeEncodeTcp) {
  DecodedFrame f;
  f.eth.dst = MacAddr::local(1);
  f.eth.src = MacAddr::local(2);
  f.eth.vlan = 16;
  f.eth.ethertype = kEtherTypeIpv4;
  f.ip = Ipv4Packet{};
  f.ip->src = Ipv4Addr(10, 0, 0, 23);
  f.ip->dst = Ipv4Addr(192, 150, 187, 12);
  f.tcp = TcpSegment{};
  f.tcp->src_port = 1234;
  f.tcp->dst_port = 80;
  f.tcp->flags = kTcpSyn;

  auto bytes = f.encode();
  auto decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_TRUE(decoded->tcp);
  EXPECT_EQ(decoded->eth.vlan, 16);
  EXPECT_EQ(decoded->tcp->dst_port, 80);
  EXPECT_TRUE(decoded->tcp->syn());

  // Mutate-and-reencode (what the gateway's NAT does) keeps it parseable.
  decoded->ip->src = Ipv4Addr(7, 7, 7, 7);
  decoded->tcp->seq += 24;
  auto re = decode_frame(decoded->encode());
  ASSERT_TRUE(re);
  EXPECT_EQ(re->ip->src.str(), "7.7.7.7");
}

TEST(Frame, FlowKeyAndReverse) {
  DecodedFrame f;
  f.eth.ethertype = kEtherTypeIpv4;
  f.ip = Ipv4Packet{};
  f.ip->src = Ipv4Addr(10, 0, 0, 23);
  f.ip->dst = Ipv4Addr(1, 2, 3, 4);
  f.udp = UdpDatagram{};
  f.udp->src_port = 9999;
  f.udp->dst_port = 53;
  auto key = flow_key_of(f);
  ASSERT_TRUE(key);
  EXPECT_EQ(key->proto, FlowProto::kUdp);
  EXPECT_EQ(key->src.port, 9999);
  auto rev = key->reversed();
  EXPECT_EQ(rev.src.port, 53);
  EXPECT_EQ(rev.dst.addr, f.ip->src);
  EXPECT_EQ(rev.reversed(), *key);
}

TEST(Frame, NonIpHasNoFlowKey) {
  DecodedFrame f;
  f.eth.ethertype = kEtherTypeArp;
  f.arp = ArpMessage{};
  EXPECT_FALSE(flow_key_of(f));
}

TEST(Pcap, HeaderAndRecords) {
  PcapWriter pcap;
  std::vector<std::uint8_t> frame(60, 0xAA);
  pcap.record(util::TimePoint{1'500'000}, frame);
  pcap.record(util::TimePoint{2'000'001}, frame);
  EXPECT_EQ(pcap.packet_count(), 2u);
  auto bytes = pcap.contents();
  ASSERT_EQ(bytes.size(), 24u + 2 * (16 + 60));
  // Magic, little-endian.
  EXPECT_EQ(bytes[0], 0xD4);
  EXPECT_EQ(bytes[1], 0xC3);
  EXPECT_EQ(bytes[2], 0xB2);
  EXPECT_EQ(bytes[3], 0xA1);
  // First record timestamp: 1 s, 500000 µs.
  EXPECT_EQ(bytes[24], 1);
  const std::uint32_t usec = bytes[28] | (bytes[29] << 8) |
                             (bytes[30] << 16) |
                             (static_cast<std::uint32_t>(bytes[31]) << 24);
  EXPECT_EQ(usec, 500'000u);
}

}  // namespace
}  // namespace gq::pkt
