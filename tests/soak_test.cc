// Containment-escape soak harness (the paper's §5 argument under
// adversarial network conditions). Each soak builds a full farm, drives
// TCP and UDP flows through all six verdicts for simulated tens of
// minutes while the fabric drops, duplicates, reorders, jitters and
// flaps — including scheduled containment-server outages — and checks
// two invariants at the end:
//
//   1. Zero containment escapes, ever: every IP frame the gateway emits
//      toward the external network is matched against the verdict event
//      stream; a frame whose (source global addr, original destination)
//      pair was never authorized by a FORWARD / LIMIT / REWRITE verdict
//      is an escape. The oracle taps Gateway::transmit_upstream — the
//      single choke point all upstream emissions funnel through — so a
//      routing bug cannot sidestep it.
//   2. Bit-identical replay: the full FarmEvent stream and the upstream
//      frame log are byte-identical across runs with the same seed, and
//      differ across seeds (catching accidental Rng sharing between
//      links).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "netsim/fault.h"
#include "packet/frame.h"
#include "util/strings.h"

namespace gq {
namespace {

using util::Ipv4Addr;

// The six verdicts keyed by destination port, for both TCP and UDP.
constexpr std::uint16_t kPorts[] = {8001, 8002, 8003, 8004, 8005, 8006};

class CyclingPolicy : public cs::Policy {
 public:
  explicit CyclingPolicy(util::Endpoint sink, bool cacheable = false)
      : cs::Policy("Cycling"), sink_(sink), cacheable_(cacheable) {}

  cs::Decision decide(const cs::FlowInfo& info) override {
    switch (info.dst().port) {
      case 8001: return maybe_cached(cs::Decision::forward());
      case 8002: return maybe_cached(cs::Decision::limit(4096));
      case 8003: return maybe_cached(cs::Decision::drop("denied"));
      case 8004:
        return maybe_cached(cs::Decision::redirect(sink_, "redirected"));
      case 8005:
        return maybe_cached(cs::Decision::reflect(sink_, "reflected"));
      case 8006: return cs::Decision::rewrite("proxied");  // Never cached.
      default:   return cs::Decision::drop("unexpected port");
    }
  }

  std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
      const cs::FlowInfo&) override {
    // Minimal content-control proxy: answer the inmate directly without
    // ever opening the outbound leg.
    class Banner : public cs::RewriteHandler {
      void on_inmate_data(cs::RewriteContext& ctx,
                          std::span<const std::uint8_t>) override {
        ctx.send_to_inmate(std::string_view("250 proxied\r\n"));
      }
    };
    return std::make_unique<Banner>();
  }

  std::optional<std::vector<std::uint8_t>> rewrite_udp(
      const cs::FlowInfo&, std::span<const std::uint8_t> payload) override {
    std::vector<std::uint8_t> reply(payload.begin(), payload.end());
    std::reverse(reply.begin(), reply.end());
    return reply;
  }

 private:
  cs::Decision maybe_cached(cs::Decision decision) {
    // The verdict is a pure function of the destination endpoint, so
    // dst-endpoint scope is exact. The TTL must outlive the wave
    // cycle: each port repeats only every 90s (6 ports, 15s waves), so
    // the 60s subfarm default would expire every entry between visits.
    return cacheable_ ? std::move(decision).cached(
                            shim::CacheScope::kDstEndpoint, 300'000)
                      : decision;
  }

  util::Endpoint sink_;
  bool cacheable_;
};

struct SoakOptions {
  std::uint64_t seed = 0x50414B;
  int inmates = 2;
  util::Duration duration = util::minutes(10);
  util::Duration wave_interval = util::seconds(15);
  sim::FaultProfile inmate_link;    // Applied to every inmate NIC link.
  sim::FaultProfile upstream_link;  // Applied to the gateway uplink.
  sim::FaultProfile cs_link;        // Applied to the CS management link.
  std::string containment_extra;    // Extra INI: [FailClosed] / [Overload].
  bool cacheable = false;  // Policy opts its verdicts into the gateway cache.
  bool burst = false;  // Fire 12 back-to-back flows at t=90s (overload).
};

struct SoakResult {
  std::string event_log;     // Serialized FarmEvent stream.
  std::string upstream_log;  // Serialized gateway upstream emissions.
  std::vector<std::string> escapes;
  std::map<shim::Verdict, std::uint64_t> verdict_totals;
  std::uint64_t fail_closed = 0;
  std::uint64_t verdict_timeouts = 0;
  std::uint64_t shim_retries = 0;
  std::uint64_t shed_refused = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t upstream_ip_frames = 0;
  std::uint64_t fault_dropped = 0;  // Across all impaired links.
  std::uint64_t fail_closed_reflects = 0;  // FailClosed verdicts = REFLECT.
};

std::string event_line(const obs::FarmEvent& e) {
  std::ostringstream os;
  os << e.time.usec << ' ' << obs::farm_event_kind_name(e.kind) << ' '
     << e.subfarm << " vlan=" << e.vlan << ' '
     << (e.proto == pkt::FlowProto::kTcp ? "tcp" : "udp")
     << " dst=" << e.orig_dst.str() << ' ' << shim::verdict_name(e.verdict)
     << " src=" << (e.verdict_cached ? "cached" : "shim")
     << " policy=" << e.policy_name << " ann=" << e.annotation
     << " b2s=" << e.bytes_to_server << " b2i=" << e.bytes_to_inmate
     << " int=" << e.inmate_internal.str()
     << " glob=" << e.inmate_global.str() << " sink=" << e.sink_service;
  return os.str();
}

SoakResult run_soak(const SoakOptions& opts) {
  core::FarmOptions farm_options;
  farm_options.seed = opts.seed;
  core::Farm farm(farm_options);

  // Simulated Internet: one echo server answering every soak port.
  const Ipv4Addr echo_addr(93, 184, 216, 34);
  auto& echo = farm.add_external_host("echo", echo_addr);
  std::vector<std::shared_ptr<net::UdpSocket>> echo_udp;
  for (const auto port : kPorts) {
    echo.listen(port, [](std::shared_ptr<net::TcpConnection> conn) {
      std::weak_ptr<net::TcpConnection> weak = conn;
      conn->on_data = [weak](std::span<const std::uint8_t> data) {
        if (auto c = weak.lock()) c->send(data);
      };
    });
    auto socket = echo.udp_open(port);
    auto* raw = socket.get();
    socket->on_datagram = [raw](util::Endpoint from,
                                std::vector<std::uint8_t> data) {
      raw->send_to(from, data);
    };
    echo_udp.push_back(std::move(socket));
  }

  auto& sub = farm.add_subfarm("Soak");
  sub.add_catchall_sink();  // Registers the "sink" service.
  if (!opts.containment_extra.empty())
    sub.configure_containment(opts.containment_extra);
  const auto sink = sub.policy_env().services.at("sink");
  sub.bind_policy(sub.router().config().vlan_first,
                  sub.router().config().vlan_last,
                  std::make_shared<CyclingPolicy>(sink, opts.cacheable));

  // --- Escape oracle: record every upstream IP emission ------------------
  const auto external_net = sub.router().config().external_net;
  struct UpstreamRecord {
    std::int64_t usec;
    pkt::FlowProto proto;
    Ipv4Addr src, dst;
    std::uint16_t sport, dport;
  };
  std::vector<UpstreamRecord> upstream;
  farm.gateway().set_upstream_tap(
      [&](util::TimePoint at, const std::vector<std::uint8_t>& bytes) {
        const auto decoded = pkt::decode_frame(bytes);
        if (!decoded || !decoded->ip) return;
        if (!decoded->is_tcp() && !decoded->is_udp()) return;
        if (!external_net.contains(decoded->ip->src)) return;
        upstream.push_back({at.usec,
                            decoded->is_tcp() ? pkt::FlowProto::kTcp
                                              : pkt::FlowProto::kUdp,
                            decoded->ip->src, decoded->ip->dst,
                            decoded->src_port(), decoded->dst_port()});
      });

  // --- Event stream capture ---------------------------------------------
  std::vector<obs::FarmEvent> events;
  std::ostringstream log;
  farm.telemetry().bus().subscribe([&](const obs::FarmEvent& e) {
    events.push_back(e);
    log << event_line(e) << '\n';
  });

  // --- Inmates and link faults ------------------------------------------
  std::vector<inm::Inmate*> inmates;
  for (int i = 0; i < opts.inmates; ++i)
    inmates.push_back(&sub.create_inmate(inm::HostingKind::kVm));
  std::vector<sim::Port*> impaired;
  if (opts.inmate_link.enabled())
    for (auto* inmate : inmates) {
      farm.set_link_faults(inmate->host().nic(), opts.inmate_link);
      impaired.push_back(&inmate->host().nic());
    }
  if (opts.upstream_link.enabled()) {
    farm.set_link_faults(farm.gateway().upstream_port(), opts.upstream_link);
    impaired.push_back(&farm.gateway().upstream_port());
  }
  if (opts.cs_link.enabled()) {
    farm.set_link_faults(sub.containment_host().nic(), opts.cs_link);
    impaired.push_back(&sub.containment_host().nic());
  }

  // --- Traffic: one TCP + one UDP flow per wave, ports cycling ----------
  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  std::vector<std::shared_ptr<net::UdpSocket>> udps;
  auto launch_flow = [&](int index) {
    auto& host = inmates[index % inmates.size()]->host();
    if (!host.configured()) return;  // Still booting / reverting.
    const auto port = kPorts[index % 6];
    auto conn = host.connect({echo_addr, port});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak] {
      if (auto c = weak.lock()) c->send(std::string_view("hello gq\r\n"));
    };
    conn->on_data = [weak](std::span<const std::uint8_t>) {
      if (auto c = weak.lock()) c->close();
    };
    conns.push_back(std::move(conn));
    auto socket = host.udp_open(0);
    const std::vector<std::uint8_t> ping = {'p', 'i', 'n', 'g'};
    socket->send_to({echo_addr, port}, ping);
    udps.push_back(std::move(socket));
  };
  int wave = 0;
  for (auto at = util::seconds(60); at.usec < opts.duration.usec;
       at = at + opts.wave_interval) {
    farm.loop().schedule_at(util::TimePoint{at.usec},
                            [&launch_flow, wave] { launch_flow(wave); });
    ++wave;
  }
  if (opts.burst)
    for (int i = 0; i < 12; ++i)
      farm.loop().schedule_at(
          util::TimePoint{util::seconds(90).usec + i * 50'000},
          [&launch_flow, i] { launch_flow(i * 6); });  // All port 8001.

  farm.run_for(opts.duration);

  // --- End-of-run escape audit ------------------------------------------
  // Authorized pairs: (inmate global addr, original destination) for
  // every FORWARD / LIMIT / REWRITE verdict, with globals resolved from
  // the DHCP bind events of the same VLAN.
  std::map<std::uint16_t, std::set<Ipv4Addr>> globals_by_vlan;
  std::set<std::tuple<pkt::FlowProto, Ipv4Addr, Ipv4Addr, std::uint16_t>>
      authorized;
  SoakResult result;
  for (const auto& e : events) {
    if (e.kind == obs::FarmEvent::Kind::kDhcpBind)
      globals_by_vlan[e.vlan].insert(e.inmate_global);
    if (e.kind != obs::FarmEvent::Kind::kFlowVerdict) continue;
    if (e.policy_name == "FailClosed" &&
        e.verdict == shim::Verdict::kReflect)
      ++result.fail_closed_reflects;
    if (e.verdict != shim::Verdict::kForward &&
        e.verdict != shim::Verdict::kLimit &&
        e.verdict != shim::Verdict::kRewrite)
      continue;
    for (const auto& global : globals_by_vlan[e.vlan])
      authorized.insert({e.proto, global, e.orig_dst.addr, e.orig_dst.port});
  }
  std::ostringstream uplog;
  for (const auto& rec : upstream) {
    ++result.upstream_ip_frames;
    uplog << rec.usec << (rec.proto == pkt::FlowProto::kTcp ? " tcp " : " udp ")
          << rec.src.str() << ':' << rec.sport << " > " << rec.dst.str()
          << ':' << rec.dport << '\n';
    if (!authorized.count({rec.proto, rec.src, rec.dst, rec.dport}))
      result.escapes.push_back(util::format(
          "t=%lld %s:%u -> %s:%u without an authorizing verdict",
          static_cast<long long>(rec.usec), rec.src.str().c_str(), rec.sport,
          rec.dst.str().c_str(), rec.dport));
  }

  result.event_log = log.str();
  result.upstream_log = uplog.str();
  result.verdict_totals = farm.reporter().verdict_totals();
  const auto& metrics = farm.metrics();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    const auto* c = metrics.find_counter(name);
    return c ? c->value() : 0;
  };
  result.fail_closed = counter("gw.Soak.fail_closed");
  result.verdict_timeouts = counter("gw.Soak.verdict_timeouts");
  result.shim_retries = counter("gw.Soak.shim_retries");
  result.shed_refused = counter("cs.Soak.shed_refused");
  result.cache_hits = counter("gw.Soak.cache_hit");
  result.cache_inserts = counter("gw.Soak.cache_insert");
  for (const auto* port : impaired) {
    result.fault_dropped += port->fault_counters().dropped +
                            port->fault_counters().flap_dropped;
    if (port->peer())
      result.fault_dropped += port->peer()->fault_counters().dropped +
                              port->peer()->fault_counters().flap_dropped;
  }
  return result;
}

// Pretty-printer so a failing escape assertion names the frames.
std::string join_escapes(const SoakResult& result) {
  std::string out;
  for (const auto& e : result.escapes) out += e + "\n";
  return out;
}

// --- The escalation ladder: zero escapes under every profile --------------

TEST(Soak, CleanFabricCoversAllSixVerdicts) {
  SoakOptions opts;
  opts.duration = util::minutes(12);
  const auto result = run_soak(opts);
  EXPECT_TRUE(result.escapes.empty()) << join_escapes(result);
  EXPECT_GT(result.upstream_ip_frames, 0u);
  EXPECT_EQ(result.fault_dropped, 0u);
  EXPECT_EQ(result.fail_closed, 0u);
  auto totals = result.verdict_totals;
  EXPECT_GE(totals[shim::Verdict::kForward], 1u);
  EXPECT_GE(totals[shim::Verdict::kLimit], 1u);
  EXPECT_GE(totals[shim::Verdict::kDrop], 1u);
  EXPECT_GE(totals[shim::Verdict::kRedirect], 1u);
  EXPECT_GE(totals[shim::Verdict::kReflect], 1u);
  EXPECT_GE(totals[shim::Verdict::kRewrite], 1u);
}

TEST(Soak, ModerateLossKeepsContainment) {
  SoakOptions opts;
  opts.duration = util::minutes(10);
  opts.inmate_link.drop_probability = 0.05;
  opts.inmate_link.jitter_max = util::milliseconds(2);
  opts.upstream_link.drop_probability = 0.10;
  opts.upstream_link.jitter_max = util::milliseconds(2);
  opts.cs_link.drop_probability = 0.05;
  const auto result = run_soak(opts);
  EXPECT_TRUE(result.escapes.empty()) << join_escapes(result);
  EXPECT_GT(result.upstream_ip_frames, 0u);
  EXPECT_GT(result.fault_dropped, 0u);
}

TEST(Soak, HeavyLossReorderingAndDuplicationKeepsContainment) {
  SoakOptions opts;
  opts.duration = util::minutes(15);
  opts.inmate_link.drop_probability = 0.10;
  opts.inmate_link.reorder_probability = 0.2;
  opts.inmate_link.reorder_window = util::milliseconds(20);
  opts.upstream_link.drop_probability = 0.30;
  opts.upstream_link.duplicate_probability = 0.10;
  opts.upstream_link.reorder_probability = 0.30;
  opts.upstream_link.reorder_window = util::milliseconds(20);
  opts.upstream_link.jitter_max = util::milliseconds(5);
  opts.cs_link.drop_probability = 0.25;
  opts.containment_extra = "[FailClosed]\nDeadlineMs = 10000\n";
  const auto result = run_soak(opts);
  EXPECT_TRUE(result.escapes.empty()) << join_escapes(result);
  EXPECT_GT(result.upstream_ip_frames, 0u);
  EXPECT_GT(result.fault_dropped, 0u);
  // Shims do get lost on a 25%-lossy management link: the gateway's
  // retry machinery must have engaged.
  EXPECT_GT(result.shim_retries, 0u);
}

// --- Fail-closed behaviour during containment-server outages --------------

SoakOptions outage_options() {
  SoakOptions opts;
  opts.duration = util::minutes(12);
  // The CS link flaps hard: dead for 80s out of every 180s.
  opts.cs_link.flap_period = util::seconds(180);
  opts.cs_link.flap_down = util::seconds(80);
  return opts;
}

TEST(Soak, CsOutageFailsClosedToDrop) {
  auto opts = outage_options();
  opts.containment_extra =
      "[FailClosed]\nVerdict = DROP\nDeadlineMs = 10000\n";
  const auto result = run_soak(opts);
  EXPECT_TRUE(result.escapes.empty()) << join_escapes(result);
  // Flows opened during the outage windows hit the verdict deadline and
  // were forcibly resolved by the gateway, not left dangling.
  EXPECT_GT(result.verdict_timeouts, 0u);
  EXPECT_GT(result.fail_closed, 0u);
  EXPECT_NE(result.event_log.find("policy=FailClosed"), std::string::npos);
  EXPECT_EQ(result.fail_closed_reflects, 0u);
}

TEST(Soak, CsOutageFailsClosedToReflectWhenConfigured) {
  auto opts = outage_options();
  opts.containment_extra =
      "[FailClosed]\nVerdict = REFLECT\nDeadlineMs = 10000\n"
      "ReflectService = sink\n";
  const auto result = run_soak(opts);
  EXPECT_TRUE(result.escapes.empty()) << join_escapes(result);
  EXPECT_GT(result.fail_closed, 0u);
  EXPECT_GT(result.fail_closed_reflects, 0u);
}

TEST(Soak, ReflectFailClosedRequiresResolvableSink) {
  core::Farm farm;
  auto& sub = farm.add_subfarm("Bad");
  EXPECT_THROW(sub.configure_containment(
                   "[FailClosed]\nVerdict = REFLECT\n"
                   "ReflectService = nonexistent\n"),
               std::runtime_error);
}

// --- Overload shedding is distinguishable from loss -----------------------

TEST(Soak, OverloadedCsShedsInsteadOfStalling) {
  SoakOptions opts;
  opts.duration = util::minutes(8);
  opts.burst = true;  // 12 flows in 600ms against a 3s-per-decision CS.
  opts.containment_extra =
      "[Overload]\nQueueDepth = 2\nMode = refuse\nDecisionDelayMs = 3000\n";
  const auto result = run_soak(opts);
  EXPECT_TRUE(result.escapes.empty()) << join_escapes(result);
  EXPECT_GT(result.shed_refused, 0u);
  // Shed flows carry an explicit OverloadShed decision — an operator can
  // tell refusal apart from packet loss in the event stream.
  EXPECT_NE(result.event_log.find("OverloadShed"), std::string::npos);
}

// --- Determinism regression ----------------------------------------------

TEST(Soak, IdenticalSeedsReplayBitIdentically) {
  SoakOptions opts;
  opts.duration = util::minutes(8);
  opts.inmate_link.drop_probability = 0.08;
  opts.upstream_link.drop_probability = 0.20;
  opts.upstream_link.duplicate_probability = 0.05;
  opts.upstream_link.reorder_probability = 0.15;
  opts.upstream_link.reorder_window = util::milliseconds(15);
  opts.cs_link.drop_probability = 0.10;
  opts.cs_link.flap_period = util::seconds(150);
  opts.cs_link.flap_down = util::seconds(40);
  opts.containment_extra = "[FailClosed]\nDeadlineMs = 10000\n";

  opts.seed = 0xA11CE;
  const auto a1 = run_soak(opts);
  const auto a2 = run_soak(opts);
  EXPECT_EQ(a1.event_log, a2.event_log);
  EXPECT_EQ(a1.upstream_log, a2.upstream_log);
  EXPECT_EQ(a1.fault_dropped, a2.fault_dropped);
  EXPECT_TRUE(a1.escapes.empty()) << join_escapes(a1);

  // A second seed both replays identically against itself and — because
  // every link draws from an independent stream derived from the farm
  // seed — produces a genuinely different fault pattern, which would not
  // hold if links accidentally shared an Rng.
  opts.seed = 0xB0B0;
  const auto b1 = run_soak(opts);
  const auto b2 = run_soak(opts);
  EXPECT_EQ(b1.event_log, b2.event_log);
  EXPECT_EQ(b1.upstream_log, b2.upstream_log);
  EXPECT_TRUE(b1.escapes.empty()) << join_escapes(b1);
  EXPECT_NE(a1.event_log, b1.event_log);
}

// --- The verdict cache under soak conditions ------------------------------

TEST(Soak, VerdictCachingKeepsContainment) {
  // Same clean-fabric soak, but the policy opts every non-REWRITE
  // verdict into the gateway cache: waves land 15s apart against a 60s
  // default TTL, so after the first wave most verdicts are served
  // gateway-side. The escape oracle must still find nothing — a cached
  // FORWARD authorizes exactly what the original shim verdict did.
  SoakOptions opts;
  opts.duration = util::minutes(12);
  opts.cacheable = true;
  const auto result = run_soak(opts);
  EXPECT_TRUE(result.escapes.empty()) << join_escapes(result);
  EXPECT_GT(result.upstream_ip_frames, 0u);
  EXPECT_GT(result.cache_inserts, 0u);
  EXPECT_GT(result.cache_hits, 0u);
  // Cached verdicts still publish FlowVerdict events, labelled by
  // source, and all six verdicts still flow (REWRITE via the CS).
  EXPECT_NE(result.event_log.find("src=cached"), std::string::npos);
  auto totals = result.verdict_totals;
  EXPECT_GE(totals[shim::Verdict::kForward], 1u);
  EXPECT_GE(totals[shim::Verdict::kRewrite], 1u);
}

TEST(Soak, VerdictCachingReplaysBitIdentically) {
  // The cache must not perturb determinism: with faults, outages and
  // caching all enabled, identical seeds still produce byte-identical
  // event and upstream logs (which now embed the src=cached/shim
  // labels, so a hit/miss divergence cannot hide).
  SoakOptions opts;
  opts.duration = util::minutes(8);
  opts.cacheable = true;
  opts.inmate_link.drop_probability = 0.08;
  opts.upstream_link.drop_probability = 0.20;
  opts.upstream_link.reorder_probability = 0.15;
  opts.upstream_link.reorder_window = util::milliseconds(15);
  opts.cs_link.drop_probability = 0.10;
  opts.cs_link.flap_period = util::seconds(150);
  opts.cs_link.flap_down = util::seconds(40);
  opts.containment_extra = "[FailClosed]\nDeadlineMs = 10000\n";

  opts.seed = 0xCAC4E;
  const auto a1 = run_soak(opts);
  const auto a2 = run_soak(opts);
  EXPECT_EQ(a1.event_log, a2.event_log);
  EXPECT_EQ(a1.upstream_log, a2.upstream_log);
  EXPECT_TRUE(a1.escapes.empty()) << join_escapes(a1);
  EXPECT_GT(a1.cache_hits, 0u);

  // And caching changes the decision path, not the contained traffic:
  // the same seed without the cache also stays escape-free.
  opts.cacheable = false;
  const auto off = run_soak(opts);
  EXPECT_TRUE(off.escapes.empty()) << join_escapes(off);
  EXPECT_EQ(off.cache_hits, 0u);
}

}  // namespace
}  // namespace gq
