// Unit tests for src/util: byte buffers, addresses, rng, strings, md5,
// rate limiting, ini parsing, glob matching.
#include <gtest/gtest.h>

#include "util/addr.h"
#include "util/bytes.h"
#include "util/glob.h"
#include "util/ini.h"
#include "util/md5.h"
#include "util/rate.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/time.h"

namespace gq::util {
namespace {

TEST(Bytes, RoundTripIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  auto buf = w.take();
  ASSERT_EQ(buf.size(), 15u);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, NetworkByteOrder) {
  ByteWriter w;
  w.u16(0x0102);
  auto buf = w.take();
  EXPECT_EQ(buf[0], 0x01);  // Big-endian on the wire.
  EXPECT_EQ(buf[1], 0x02);
}

TEST(Bytes, UnderflowThrows) {
  std::vector<std::uint8_t> buf = {1, 2};
  ByteReader r(buf);
  EXPECT_THROW(r.u32(), BufferUnderflow);
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.str("payload");
  w.patch_u16(0, 0xBEEF);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16(), 0xBEEF);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("hello");
  ByteReader r(w.view());
  EXPECT_EQ(r.str(5), "hello");
}

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("192.168.1.42");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->str(), "192.168.1.42");
  EXPECT_EQ(a->value(), 0xC0A8012Au);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
}

TEST(Ipv4Addr, PrivateRanges) {
  EXPECT_TRUE(Ipv4Addr(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Addr(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(192, 168, 5, 5).is_private());
  EXPECT_FALSE(Ipv4Addr(8, 8, 8, 8).is_private());
}

TEST(Ipv4Net, ContainsAndHosts) {
  auto net = Ipv4Net::parse("10.3.0.0/24");
  ASSERT_TRUE(net);
  EXPECT_TRUE(net->contains(Ipv4Addr(10, 3, 0, 77)));
  EXPECT_FALSE(net->contains(Ipv4Addr(10, 4, 0, 77)));
  EXPECT_EQ(net->size(), 256u);
  EXPECT_EQ(net->host(5).str(), "10.3.0.5");
}

TEST(Ipv4Net, NormalizesBase) {
  Ipv4Net net(Ipv4Addr(10, 3, 0, 99), 24);
  EXPECT_EQ(net.base().str(), "10.3.0.0");
}

TEST(MacAddr, LocalAndBroadcast) {
  auto m = MacAddr::local(0x1234);
  EXPECT_EQ(m.str(), "02:00:00:00:12:34");
  EXPECT_FALSE(m.is_multicast());
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
}

TEST(Endpoint, Ordering) {
  Endpoint a{Ipv4Addr(1, 2, 3, 4), 80};
  Endpoint b{Ipv4Addr(1, 2, 3, 4), 81};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.str(), "1.2.3.4:80");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWs) {
  auto parts = split_ws("  foo \t bar\nbaz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "bar");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("4x"));
  EXPECT_FALSE(parse_int(""));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 5, "ok"), "5-ok");
}

TEST(Strings, StartsWithIcase) {
  EXPECT_TRUE(starts_with_icase("HELO example", "helo"));
  EXPECT_FALSE(starts_with_icase("EH", "ehlo"));
}

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex_digest(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex_digest("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex_digest("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex_digest("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(
      Md5::hex_digest("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01"
                      "23456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Md5, StreamingMatchesOneShot) {
  Md5 md5;
  md5.update("mess");
  md5.update("age digest");
  auto d = md5.digest();
  EXPECT_EQ(hex(d.data(), d.size()), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(TokenBucket, EnforcesRate) {
  TokenBucket bucket(10.0, 5.0);  // 10/s, burst 5.
  TimePoint t{};
  // Burst drains.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_consume(t, 1.0));
  EXPECT_FALSE(bucket.try_consume(t, 1.0));
  // After 100ms one token refilled.
  t = t + milliseconds(100);
  EXPECT_TRUE(bucket.try_consume(t, 1.0));
  EXPECT_FALSE(bucket.try_consume(t, 1.0));
}

TEST(TokenBucket, BurstCapped) {
  TokenBucket bucket(10.0, 5.0);
  TimePoint t{};
  t = t + seconds(100);
  EXPECT_NEAR(bucket.available(t), 5.0, 1e-9);
}

TEST(SlidingWindow, CountsAndEvicts) {
  SlidingWindowCounter win(seconds(10));
  TimePoint t{};
  win.record(t);
  win.record(t + seconds(5));
  EXPECT_EQ(win.count(t + seconds(5)), 2u);
  EXPECT_EQ(win.count(t + seconds(12)), 1u);
  EXPECT_EQ(win.count(t + seconds(16)), 0u);
}

TEST(Ini, ParsesFigure6Shape) {
  const char* text = R"(
# comment
[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543
)";
  auto file = IniFile::parse(text);
  ASSERT_EQ(file.sections.size(), 3u);
  EXPECT_EQ(file.sections[0].name, "VLAN 16-17");
  EXPECT_EQ(file.sections[0].get("decider"), "Rustock");
  EXPECT_EQ(file.sections[1].get("Trigger"), "*:25/tcp / 30min < 1 -> revert");
  auto autoinfect = file.find("autoinfect");
  ASSERT_EQ(autoinfect.size(), 1u);
  EXPECT_EQ(autoinfect[0]->get("Port"), "6543");
}

TEST(Ini, RepeatedKeysPreserved) {
  auto file = IniFile::parse("[S]\nTrigger = a\nTrigger = b\n");
  auto all = file.sections[0].get_all("trigger");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a");
  EXPECT_EQ(all[1], "b");
}

TEST(Ini, MalformedThrowsWithLine) {
  try {
    IniFile::parse("[ok]\nbad line\n");
    FAIL() << "expected IniError";
  } catch (const IniError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Ini, UnterminatedSectionThrows) {
  EXPECT_THROW(IniFile::parse("[oops\n"), IniError);
}

TEST(Glob, Basics) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("rustock.100921.*.exe", "rustock.100921.003.exe"));
  EXPECT_FALSE(glob_match("rustock.100921.*.exe", "grum.100818.003.exe"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "abbc"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("**", "x"));
  EXPECT_TRUE(glob_match("*.exe", ".exe"));
}

TEST(Glob, StarBacktracking) {
  EXPECT_TRUE(glob_match("*ab*ab", "xabyabzab"));
  EXPECT_FALSE(glob_match("*ab*ab", "xabyz"));
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(milliseconds(500)), "500.0ms");
  EXPECT_EQ(format_duration(seconds(29)), "29.0s");
  EXPECT_EQ(format_duration(minutes(5)), "5.0min");
  EXPECT_EQ(format_duration(hours(3)), "3.0h");
}

TEST(Time, Arithmetic) {
  TimePoint t{};
  auto t2 = t + seconds(3);
  EXPECT_EQ((t2 - t).usec, 3'000'000);
  EXPECT_LT(t, t2);
}

}  // namespace
}  // namespace gq::util
