// Tests for the inmate module: life-cycle state machine, hosting
// profiles, auto-infection, the inmate controller's text protocol, the
// raw-iron controller, and the VLAN pool.
#include <gtest/gtest.h>

#include "inmate/controller.h"
#include "inmate/inmate.h"
#include "inmate/vlan_pool.h"
#include "net/stack.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "services/dhcp.h"
#include "services/http.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace gq::inm {
namespace {

using util::Endpoint;
using util::Ipv4Addr;
using util::Ipv4Net;

// A behaviour that just records whether it is running.
class ProbeBehavior : public Behavior {
 public:
  explicit ProbeBehavior(int* starts, int* stops)
      : starts_(starts), stops_(stops) {}
  [[nodiscard]] std::string name() const override { return "probe"; }
  void start(net::HostStack&) override { ++*starts_; }
  void stop() override { ++*stops_; }

 private:
  int* starts_;
  int* stops_;
};

// Flat network with a DHCP server and an auto-infection HTTP server
// (standing in for the gateway's in-path services).
struct InmateFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::VlanSwitch sw{loop, "sw", 8};
  net::HostStack infra{loop, "infra", util::MacAddr::local(1), 1};
  std::unique_ptr<svc::DhcpServer> dhcpd;
  std::unique_ptr<svc::HttpServer> infect_server;
  int behavior_starts = 0;
  int behavior_stops = 0;
  int samples_served = 0;

  void SetUp() override {
    for (int i = 0; i < 8; ++i) sw.set_access(i, 4);
    sim::Port::connect(infra.nic(), sw.port(0), util::microseconds(20));
    const Ipv4Net net(Ipv4Addr(10, 6, 0, 0), 24);
    infra.configure({Ipv4Addr(10, 6, 0, 1), net, Ipv4Addr(10, 6, 0, 1), {}});
    dhcpd = std::make_unique<svc::DhcpServer>(
        infra, svc::DhcpPool(
                   svc::DhcpLeaseConfig{net, Ipv4Addr(10, 6, 0, 1),
                                        Ipv4Addr(10, 6, 0, 1),
                                        Ipv4Addr(10, 6, 0, 1)},
                   50, 100));
    infect_server = std::make_unique<svc::HttpServer>(
        infra, 6543, [this](const svc::HttpRequest&, util::Endpoint) {
          ++samples_served;
          return svc::HttpResponse::make(
              200, "OK",
              util::format("sample-%03d.exe\nPAYLOAD", samples_served));
        });
  }

  InmateConfig make_config(std::uint16_t vlan, HostingKind kind) {
    InmateConfig config;
    config.vlan = vlan;
    config.hosting = kind;
    config.autoinfect = Endpoint{Ipv4Addr(10, 6, 0, 1), 6543};
    config.seed = vlan;
    return config;
  }

  BehaviorFactory probe_factory() {
    return [this](const std::string&, util::Rng&) {
      return std::make_unique<ProbeBehavior>(&behavior_starts,
                                             &behavior_stops);
    };
  }

  std::unique_ptr<Inmate> make_inmate(std::uint16_t vlan, HostingKind kind,
                                      std::size_t port) {
    auto inmate = std::make_unique<Inmate>(loop, make_config(vlan, kind),
                                           probe_factory());
    sim::Port::connect(inmate->host().nic(), sw.port(port),
                       util::microseconds(20));
    return inmate;
  }
};

TEST_F(InmateFixture, BootInfectRun) {
  auto inmate = make_inmate(16, HostingKind::kVm, 1);
  EXPECT_EQ(inmate->state(), InmateState::kStopped);
  inmate->power_on();
  EXPECT_EQ(inmate->state(), InmateState::kBooting);
  loop.run_for(util::minutes(2));
  EXPECT_EQ(inmate->state(), InmateState::kRunning);
  EXPECT_EQ(inmate->current_sample(), "sample-001.exe");
  EXPECT_EQ(behavior_starts, 1);
  EXPECT_EQ(inmate->infections(), 1);
}

TEST_F(InmateFixture, StateTransitionsReported) {
  auto inmate = make_inmate(16, HostingKind::kVm, 1);
  std::vector<InmateState> states;
  inmate->set_state_handler([&](Inmate&, InmateState, InmateState state) {
    states.push_back(state);
  });
  inmate->power_on();
  loop.run_for(util::minutes(2));
  ASSERT_GE(states.size(), 3u);
  EXPECT_EQ(states[0], InmateState::kBooting);
  EXPECT_EQ(states[1], InmateState::kInfecting);
  EXPECT_EQ(states[2], InmateState::kRunning);
}

TEST_F(InmateFixture, RevertReinfects) {
  auto inmate = make_inmate(16, HostingKind::kVm, 1);
  inmate->power_on();
  loop.run_for(util::minutes(2));
  ASSERT_EQ(inmate->current_sample(), "sample-001.exe");
  inmate->revert();
  EXPECT_EQ(inmate->state(), InmateState::kReverting);
  EXPECT_EQ(behavior_stops, 1);  // Old behaviour stopped.
  loop.run_for(util::minutes(3));
  EXPECT_EQ(inmate->state(), InmateState::kRunning);
  EXPECT_EQ(inmate->current_sample(), "sample-002.exe");  // Fresh sample.
  EXPECT_EQ(inmate->infections(), 2);
}

TEST_F(InmateFixture, RebootDoesNotReinfect) {
  auto inmate = make_inmate(16, HostingKind::kVm, 1);
  inmate->power_on();
  loop.run_for(util::minutes(2));
  ASSERT_EQ(samples_served, 1);
  inmate->reboot();
  loop.run_for(util::minutes(2));
  EXPECT_EQ(inmate->state(), InmateState::kRunning);
  EXPECT_EQ(samples_served, 1);  // No second download.
  EXPECT_EQ(inmate->current_sample(), "sample-001.exe");
  EXPECT_EQ(behavior_starts, 2);  // Behaviour restarted though.
}

TEST_F(InmateFixture, PowerOffStopsEverything) {
  auto inmate = make_inmate(16, HostingKind::kVm, 1);
  inmate->power_on();
  loop.run_for(util::minutes(2));
  inmate->power_off();
  EXPECT_EQ(inmate->state(), InmateState::kStopped);
  EXPECT_EQ(behavior_stops, 1);
  EXPECT_FALSE(inmate->host().configured());
  // Power back on: fresh infection (it's a clean start).
  inmate->power_on();
  loop.run_for(util::minutes(2));
  EXPECT_EQ(inmate->state(), InmateState::kRunning);
}

TEST_F(InmateFixture, HostingProfilesDiffer) {
  const auto vm = HostingProfile::for_kind(HostingKind::kVm);
  const auto emulated = HostingProfile::for_kind(HostingKind::kEmulated);
  const auto iron = HostingProfile::for_kind(HostingKind::kRawIron);
  EXPECT_LT(vm.boot_delay, emulated.boot_delay);
  EXPECT_LT(vm.revert_delay, iron.revert_delay);
  // §6.4: the reimaging cycle takes around 6 minutes.
  EXPECT_EQ(iron.revert_delay, util::minutes(6));
}

TEST_F(InmateFixture, InfectWithDirectBehavior) {
  auto inmate = std::make_unique<Inmate>(
      loop, [this] {
        auto config = make_config(16, HostingKind::kVm);
        config.autoinfect.reset();  // Traditional honeypot mode.
        return config;
      }(),
      probe_factory());
  sim::Port::connect(inmate->host().nic(), sw.port(1),
                     util::microseconds(20));
  inmate->power_on();
  loop.run_for(util::minutes(2));
  EXPECT_EQ(inmate->state(), InmateState::kRunning);
  EXPECT_TRUE(inmate->current_sample().empty());  // Idle, not infected.
  int starts = 0, stops = 0;
  inmate->infect_with(std::make_unique<ProbeBehavior>(&starts, &stops),
                      "worm.exe");
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(inmate->current_sample(), "worm.exe");
}

TEST_F(InmateFixture, ControllerAppliesTextProtocol) {
  auto inmate = make_inmate(16, HostingKind::kVm, 1);
  inmate->power_on();
  loop.run_for(util::minutes(2));
  ASSERT_EQ(inmate->state(), InmateState::kRunning);

  InmateController controller(infra, 7777);
  controller.register_inmate(*inmate);
  EXPECT_EQ(controller.inventory_size(), 1u);

  // Send "revert 16" from another host on the network.
  net::HostStack sender(loop, "cs", util::MacAddr::local(9), 9);
  sim::Port::connect(sender.nic(), sw.port(2), util::microseconds(20));
  sender.configure({Ipv4Addr(10, 6, 0, 9), Ipv4Net(Ipv4Addr(10, 6, 0, 0), 24),
                    {}, {}});
  auto sock = sender.udp_open(0);
  sock->send_to({Ipv4Addr(10, 6, 0, 1), 7777}, util::to_bytes("revert 16\n"));
  loop.run_for(util::seconds(2));
  EXPECT_EQ(controller.actions_received(), 1u);
  EXPECT_EQ(inmate->state(), InmateState::kReverting);
}

TEST_F(InmateFixture, ControllerRejectsUnknownVlanAndVerb) {
  InmateController controller(infra, 7777);
  std::vector<InmateController::Action> actions;
  controller.set_action_handler(
      [&](const InmateController::Action& action) {
        actions.push_back(action);
      });
  EXPECT_FALSE(controller.apply("revert", 99));
  EXPECT_FALSE(controller.apply("explode", 16));
}

TEST_F(InmateFixture, RawIronControllerFleetOps) {
  auto iron1 = make_inmate(20, HostingKind::kRawIron, 1);
  auto iron2 = make_inmate(21, HostingKind::kRawIron, 2);
  iron1->power_on();
  iron2->power_on();
  loop.run_for(util::minutes(3));
  ASSERT_EQ(iron1->state(), InmateState::kRunning);

  RawIronController ric;
  ric.register_system(*iron1);
  ric.register_system(*iron2);
  EXPECT_EQ(ric.fleet_size(), 2u);

  ric.reimage_all();
  EXPECT_EQ(ric.reimages(), 2u);
  EXPECT_EQ(iron1->state(), InmateState::kReverting);
  EXPECT_EQ(iron2->state(), InmateState::kReverting);
  // Simultaneous: both back up after one reimage period, not two.
  loop.run_for(util::minutes(6) + util::minutes(3));
  EXPECT_EQ(iron1->state(), InmateState::kRunning);
  EXPECT_EQ(iron2->state(), InmateState::kRunning);
}

TEST(VlanPool, AllocateReserveRelease) {
  VlanPool pool(16, 18);
  EXPECT_EQ(pool.capacity(), 3u);
  EXPECT_EQ(pool.allocate(), 16);
  EXPECT_TRUE(pool.reserve(18));
  EXPECT_FALSE(pool.reserve(18));  // Taken.
  EXPECT_FALSE(pool.reserve(99));  // Out of range.
  EXPECT_EQ(pool.allocate(), 17);
  EXPECT_TRUE(pool.exhausted());
  EXPECT_FALSE(pool.allocate());
  pool.release(17);
  EXPECT_EQ(pool.allocate(), 17);
}

}  // namespace
}  // namespace gq::inm
