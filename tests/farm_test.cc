// End-to-end farm scenarios through the public core::Farm API. These are
// the system-level acceptance tests: a spambot farm in the Figure 6/7
// configuration (auto-infection, C&C forwarding, SMTP reflection, spam
// harvest, activity triggers, Figure 7 report), a worm honeyfarm
// (Table 1 mechanics), and containment-safety invariants (nothing
// escapes to external victims).
#include <gtest/gtest.h>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "containment/policies.h"
#include "malware/spambot.h"
#include "malware/worm.h"
#include "services/http.h"
#include "util/strings.h"

namespace gq {
namespace {

using util::Ipv4Addr;

// A complete spam-farm scenario shared by several tests.
struct SpamFarmFixture : ::testing::Test {
  core::Farm farm;
  net::HostStack* cc_host = nullptr;
  std::unique_ptr<ext::CcServer> cc;
  net::HostStack* victim_host = nullptr;
  std::unique_ptr<ext::PolicedSmtpServer> victim_smtp;
  core::Subfarm* sub = nullptr;
  sinks::SmtpSink* smtp_sink = nullptr;

  void SetUp() override {
    // Simulated Internet: a C&C server and a victim SMTP server.
    cc_host = &farm.add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
    cc = std::make_unique<ext::CcServer>(*cc_host, 80);
    victim_host =
        &farm.add_external_host("victim-mx", Ipv4Addr(64, 12, 88, 7));
    victim_smtp = std::make_unique<ext::PolicedSmtpServer>(
        *victim_host, 25, &farm.cbl());

    // The C&C instructs bots to spam the victim.
    mal::SpamTask task;
    task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
    task.subject = "cheap meds";
    task.body = "click here";
    cc->set_document("/c2/tasks", task.serialize());

    // Subfarm in the Figure 6 configuration.
    sub = &farm.add_subfarm("Botfarm");
    sub->add_catchall_sink();
    sinks::SmtpSinkConfig sink_config;
    sink_config.port = 2526;
    smtp_sink = &sub->add_smtp_sink(sink_config, "bannersmtpsink");
    sub->set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});

    // Samples + behaviour prototypes.
    for (int i = 0; i < 3; ++i)
      sub->containment().samples().add(
          util::format("grum.100818.%03d.exe", i));
    sub->catalog().register_prototype(
        "grum.*", [](const std::string&, util::Rng& rng) {
          mal::SpambotConfig config;
          config.family = "grum";
          config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
          config.send_interval = util::seconds(2);
          return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
        });

    sub->configure_containment(R"(
[VLAN 16-17]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
)");
  }
};

TEST_F(SpamFarmFixture, FullSpambotLifecycle) {
  auto& inmate = sub->create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(10));

  // The inmate booted, got infected, and is running the sample.
  EXPECT_EQ(inmate.state(), inm::InmateState::kRunning);
  EXPECT_EQ(inmate.current_sample(), "grum.100818.000.exe");
  EXPECT_GE(inmate.infections(), 1);

  // C&C lifeline worked (FORWARD verdict let it through).
  EXPECT_GE(cc->requests(), 1u);

  // Spam was harvested by the sink...
  EXPECT_GT(smtp_sink->sessions(), 50u);
  EXPECT_GT(smtp_sink->data_transfers(), 50u);
  ASSERT_FALSE(smtp_sink->harvest().empty());
  EXPECT_EQ(smtp_sink->harvest().front().mail_from, "grum@bot.example");

  // ...and NONE of it reached the real victim.
  EXPECT_EQ(victim_smtp->sessions(), 0u);
  EXPECT_EQ(victim_smtp->messages_accepted(), 0u);
  EXPECT_TRUE(farm.reporter().blacklisted_inmates().empty());

  // The report reflects the containment: FORWARDs (C&C) and REFLECTs.
  auto totals = farm.reporter().verdict_totals();
  EXPECT_GE(totals[shim::Verdict::kForward], 1u);
  EXPECT_GT(totals[shim::Verdict::kReflect], 50u);
  EXPECT_GE(totals[shim::Verdict::kRewrite], 1u);  // Auto-infection.
  EXPECT_GE(farm.reporter().infections_served(), 1u);

  const std::string report = farm.report();
  EXPECT_NE(report.find("Botfarm"), std::string::npos);
  EXPECT_NE(report.find("Grum"), std::string::npos);
  EXPECT_NE(report.find("REFLECT"), std::string::npos);
  EXPECT_NE(report.find("SMTP sessions"), std::string::npos);
  EXPECT_NE(report.find("autoinfection"), std::string::npos);
}

TEST_F(SpamFarmFixture, BatchAdvancesAcrossReverts) {
  auto& inmate = sub->create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(3));
  ASSERT_EQ(inmate.current_sample(), "grum.100818.000.exe");
  inmate.revert();
  farm.run_for(util::minutes(3));
  // Reinfection serves the next sample in the batch (§6.6).
  EXPECT_EQ(inmate.current_sample(), "grum.100818.001.exe");
  EXPECT_EQ(inmate.state(), inm::InmateState::kRunning);
}

TEST_F(SpamFarmFixture, RebootKeepsSample) {
  auto& inmate = sub->create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(3));
  ASSERT_EQ(inmate.current_sample(), "grum.100818.000.exe");
  inmate.reboot();
  farm.run_for(util::minutes(2));
  // Reboots must NOT reinfect (§6.6): same sample keeps running.
  EXPECT_EQ(inmate.current_sample(), "grum.100818.000.exe");
  EXPECT_EQ(inmate.state(), inm::InmateState::kRunning);
}

TEST_F(SpamFarmFixture, QuietInmateTriggersRevert) {
  // An inmate whose sample has no behaviour model stays silent; the
  // 30-minute absence trigger must revert it via the containment
  // server -> inmate controller path.
  sub->containment().samples().add("unknown.sample.exe");
  auto config_text = R"(
[VLAN 17]
Decider = Grum
Infection = unknown.sample.*

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
)";
  sub->configure_containment(config_text);
  auto& inmate = sub->create_inmate(inm::HostingKind::kVm, 17);

  int reverts_seen = 0;
  farm.controller().set_action_handler(
      [&](const inm::InmateController::Action& action) {
        if (action.verb == "revert" && action.vlan == 17) ++reverts_seen;
      });
  farm.run_for(util::minutes(45));
  EXPECT_GE(reverts_seen, 1);
  EXPECT_GE(farm.reporter().trigger_firings(), 1u);
}

TEST_F(SpamFarmFixture, ActiveSpambotNotReverted) {
  auto& inmate = sub->create_inmate(inm::HostingKind::kVm);
  int reverts_seen = 0;
  farm.controller().set_action_handler(
      [&](const inm::InmateController::Action& action) {
        if (action.verb == "revert") ++reverts_seen;
      });
  farm.run_for(util::minutes(45));
  // Continuous SMTP activity means the absence trigger never fires.
  EXPECT_EQ(reverts_seen, 0);
  EXPECT_EQ(inmate.current_sample(), "grum.100818.000.exe");
}

TEST_F(SpamFarmFixture, TwoInmatesIndependentAddresses) {
  sub->create_inmate(inm::HostingKind::kVm);
  sub->create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(5));
  const auto& bindings = sub->router().inmates().bindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_GT(smtp_sink->by_source().size(), 1u);  // Both bots spamming.
}

// --- Worm honeyfarm ------------------------------------------------------

TEST(WormFarm, PropagationChainsStayInside) {
  core::Farm farm;
  auto& sub = farm.add_subfarm("WormFarm");
  // A decoy external host that must never be touched.
  auto& decoy = farm.add_external_host("decoy", Ipv4Addr(23, 32, 2, 2));
  bool decoy_touched = false;
  decoy.listen(445, [&](std::shared_ptr<net::TcpConnection>) {
    decoy_touched = true;
  });

  sub.containment().bind_policy(
      16, 31, std::make_shared<gq::cs::WormFarmPolicy>(sub.policy_env()));

  mal::WormFamily family = mal::table1_families()[0];  // Korgo.V-like.
  std::vector<mal::InfectionEvent> infections;
  auto on_infection = [&](const mal::InfectionEvent& event) {
    infections.push_back(event);
  };

  // Five inmates; no auto-infection (worm model infects directly).
  std::vector<inm::Inmate*> inmates;
  for (int i = 0; i < 5; ++i)
    inmates.push_back(&sub.create_inmate(inm::HostingKind::kVm));
  farm.run_for(util::minutes(2));  // Boot everyone.

  for (std::size_t i = 0; i < inmates.size(); ++i) {
    ASSERT_EQ(inmates[i]->state(), inm::InmateState::kRunning)
        << "inmate " << i;
    inmates[i]->infect_with(
        std::make_unique<mal::WormHostBehavior>(
            family, inmates[i]->vlan(), /*initially_infected=*/i == 0,
            on_infection, farm.rng().fork()),
        family.executable);
  }
  farm.run_for(util::minutes(5));

  // The worm propagated across inmates...
  EXPECT_GE(infections.size(), 2u);
  // ...every infection stayed inside the farm...
  EXPECT_FALSE(decoy_touched);
  // ...and the verdicts were REDIRECTs.
  auto totals = farm.reporter().verdict_totals();
  EXPECT_GT(totals[shim::Verdict::kRedirect], 0u);
  EXPECT_EQ(totals[shim::Verdict::kForward], 0u);
}

// --- Misc farm-level checks ------------------------------------------------

TEST(Farm, VlanPoolExhaustion) {
  core::Farm farm;
  core::SubfarmOptions options;
  options.vlan_first = 100;
  options.vlan_last = 101;  // Two inmates max.
  auto& sub = farm.add_subfarm("Tiny", options);
  sub.create_inmate(inm::HostingKind::kVm);
  sub.create_inmate(inm::HostingKind::kVm);
  EXPECT_THROW(sub.create_inmate(inm::HostingKind::kVm),
               std::runtime_error);
  sub.vlan_pool().release(100);
  EXPECT_NO_THROW(sub.create_inmate(inm::HostingKind::kVm));
}

TEST(Farm, MultipleSubfarmsIsolated) {
  core::Farm farm;
  auto& sub_a = farm.add_subfarm("A");
  auto& sub_b = farm.add_subfarm("B");
  sub_a.create_inmate(inm::HostingKind::kVm);
  sub_b.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(2));
  // Each subfarm's inmate bound inside its own ranges.
  const auto* binding_a = sub_a.router().inmates().by_vlan(16);
  const auto* binding_b = sub_b.router().inmates().by_vlan(32);
  ASSERT_NE(binding_a, nullptr);
  ASSERT_NE(binding_b, nullptr);
  EXPECT_TRUE(sub_a.router().config().internal_net.contains(
      binding_a->internal_addr));
  EXPECT_TRUE(sub_b.router().config().internal_net.contains(
      binding_b->internal_addr));
  EXPECT_NE(binding_a->internal_addr, binding_b->internal_addr);
  EXPECT_NE(binding_a->global_addr, binding_b->global_addr);
}

TEST(Farm, RawIronInmateBootsSlower) {
  core::Farm farm;
  auto& sub = farm.add_subfarm("Iron");
  auto& vm = sub.create_inmate(inm::HostingKind::kVm);
  auto& iron = sub.create_inmate(inm::HostingKind::kRawIron);
  farm.run_for(util::seconds(35));
  EXPECT_EQ(vm.state(), inm::InmateState::kRunning);
  EXPECT_EQ(iron.state(), inm::InmateState::kBooting);
  farm.run_for(util::seconds(30));
  EXPECT_EQ(iron.state(), inm::InmateState::kRunning);
  // Raw-iron revert (PXE reimage) takes ~6 minutes.
  iron.revert();
  farm.run_for(util::minutes(3));
  EXPECT_EQ(iron.state(), inm::InmateState::kReverting);
  farm.run_for(util::minutes(5));
  EXPECT_EQ(iron.state(), inm::InmateState::kRunning);
}

}  // namespace
}  // namespace gq
