// Shim protocol tests: exact wire sizes (24-byte request; the paper's
// Figure 4 response extended to >= 68 bytes by the wire-v2 typed
// parameter block and to >= 84 bytes by the wire-v3 cache block),
// round-trips, v2/v3 interop, malformed-input rejection, and the
// stream-scanning helper the gateway uses.
#include <gtest/gtest.h>

#include "shim/shim.h"
#include "util/bytes.h"

namespace gq::shim {
namespace {

using util::Endpoint;
using util::Ipv4Addr;

RequestShim sample_request() {
  RequestShim shim;
  shim.orig = {Ipv4Addr(10, 0, 0, 23), 1234};
  shim.resp = {Ipv4Addr(192, 150, 187, 12), 80};
  shim.vlan = 12;
  shim.nonce_port = 42;
  return shim;
}

TEST(RequestShim, ExactlyTwentyFourBytes) {
  EXPECT_EQ(sample_request().encode().size(), 24u);
  EXPECT_EQ(kRequestShimSize, 24u);
}

TEST(RequestShim, RoundTrip) {
  auto bytes = sample_request().encode();
  auto parsed = RequestShim::parse(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->orig.addr.str(), "10.0.0.23");
  EXPECT_EQ(parsed->orig.port, 1234);
  EXPECT_EQ(parsed->resp.addr.str(), "192.150.187.12");
  EXPECT_EQ(parsed->resp.port, 80);
  EXPECT_EQ(parsed->vlan, 12);
  EXPECT_EQ(parsed->nonce_port, 42);
}

TEST(RequestShim, PreambleLayout) {
  auto bytes = sample_request().encode();
  // Magic (4) | length (2) | type (1) | version (1).
  EXPECT_EQ(bytes[0], 0x47);  // 'G'
  EXPECT_EQ(bytes[1], 0x51);  // 'Q'
  EXPECT_EQ(bytes[2], 0x53);  // 'S'
  EXPECT_EQ(bytes[3], 0x48);  // 'H'
  EXPECT_EQ((bytes[4] << 8) | bytes[5], 24);
  EXPECT_EQ(bytes[6], kTypeRequest);
  EXPECT_EQ(bytes[7], kShimVersion);
}

TEST(RequestShim, RejectsWrongMagicAndTruncation) {
  auto bytes = sample_request().encode();
  auto corrupted = bytes;
  corrupted[0] ^= 0xFF;
  EXPECT_FALSE(RequestShim::parse(corrupted));
  bytes.resize(23);
  EXPECT_FALSE(RequestShim::parse(bytes));
}

TEST(RequestShim, RejectsResponseType) {
  ResponseShim response;
  response.policy_name = "X";
  EXPECT_FALSE(RequestShim::parse(response.encode()));
}

TEST(ResponseShim, WireSizes) {
  ResponseShim shim;
  shim.verdict = Verdict::kForward;
  shim.policy_name = "Rustock";
  // v3 (the default) appends the 16-byte cache block to the 68-byte v2
  // layout; 68 remains the floor any well-formed response must clear.
  EXPECT_EQ(shim.encode().size(), 84u);
  EXPECT_EQ(kResponseShimV3MinSize, 84u);
  EXPECT_EQ(kResponseShimMinSize, 68u);
  shim.wire_version = kShimVersionV2;
  EXPECT_EQ(shim.encode().size(), 68u);
}

TEST(ResponseShim, RoundTripWithAnnotation) {
  ResponseShim shim;
  shim.orig = {Ipv4Addr(10, 0, 0, 23), 1234};
  shim.resp = {Ipv4Addr(10, 3, 1, 4), 2526};
  shim.verdict = Verdict::kReflect;
  shim.policy_name = "Grum";
  shim.annotation = "full SMTP containment";
  auto bytes = shim.encode();
  EXPECT_EQ(bytes.size(), 84u + shim.annotation.size());
  std::size_t consumed = 0;
  auto parsed = ResponseShim::parse(bytes, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(parsed->verdict, Verdict::kReflect);
  EXPECT_EQ(parsed->policy_name, "Grum");
  EXPECT_EQ(parsed->annotation, "full SMTP containment");
  EXPECT_EQ(parsed->resp.port, 2526);
  EXPECT_FALSE(parsed->limit_bytes_per_sec.has_value());
}

TEST(ResponseShim, TypedLimitRateRoundTrips) {
  ResponseShim shim;
  shim.verdict = Verdict::kLimit;
  shim.policy_name = "Throttle";
  shim.limit_bytes_per_sec = 4096;
  shim.annotation = "limit 4096 B/s";  // Descriptive only, never parsed.
  auto parsed = ResponseShim::parse(shim.encode());
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->limit_bytes_per_sec.has_value());
  EXPECT_EQ(*parsed->limit_bytes_per_sec, 4096);
}

TEST(ResponseShim, ParameterBlockLayout) {
  ResponseShim shim;
  shim.verdict = Verdict::kLimit;
  shim.limit_bytes_per_sec = 0x0102030405060708;
  auto bytes = shim.encode();
  // Flags word at [56-59] with the has-limit-rate bit set, big-endian
  // rate at [60-67].
  EXPECT_EQ(bytes[56], 0u);
  EXPECT_EQ(bytes[59], kParamHasLimitRate);
  EXPECT_EQ(bytes[60], 0x01);
  EXPECT_EQ(bytes[67], 0x08);
  // Without a rate (and uncacheable, epoch 0) both the parameter block
  // [56,68) and the cache block [68,84) are all zero.
  ResponseShim bare;
  auto bare_bytes = bare.encode();
  for (std::size_t i = 56; i < 84; ++i)
    EXPECT_EQ(bare_bytes[i], 0u) << "offset " << i;
}

TEST(ResponseShim, CacheBlockLayout) {
  ResponseShim shim;
  shim.verdict = Verdict::kDrop;
  shim.cacheable = true;
  shim.cache_scope = CacheScope::kDstPort;
  shim.cache_ttl_ms = 0x0A0B0C0D;
  shim.policy_epoch = 0x1112131415161718;
  auto bytes = shim.encode();
  ASSERT_EQ(bytes.size(), 84u);
  // The cacheable bit lives in the parameter-block flags word.
  EXPECT_EQ(bytes[59] & kParamCacheable, kParamCacheable);
  // Scope (1) + reserved (3) at [68-71], TTL at [72-75], epoch [76-83].
  EXPECT_EQ(bytes[68], static_cast<std::uint8_t>(CacheScope::kDstPort));
  EXPECT_EQ(bytes[69], 0u);
  EXPECT_EQ(bytes[70], 0u);
  EXPECT_EQ(bytes[71], 0u);
  EXPECT_EQ(bytes[72], 0x0A);
  EXPECT_EQ(bytes[75], 0x0D);
  EXPECT_EQ(bytes[76], 0x11);
  EXPECT_EQ(bytes[83], 0x18);
}

TEST(ResponseShim, CacheBlockRoundTrips) {
  ResponseShim shim;
  shim.verdict = Verdict::kForward;
  shim.policy_name = "ScanAdmit";
  shim.cacheable = true;
  shim.cache_scope = CacheScope::kDstEndpoint;
  shim.cache_ttl_ms = 30000;
  shim.policy_epoch = 7;
  shim.annotation = "cacheable scan admit";
  auto parsed = ResponseShim::parse(shim.encode());
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->cacheable);
  EXPECT_EQ(parsed->cache_scope, CacheScope::kDstEndpoint);
  EXPECT_EQ(parsed->cache_ttl_ms, 30000u);
  EXPECT_EQ(parsed->policy_epoch, 7u);
  EXPECT_EQ(parsed->annotation, "cacheable scan admit");
  EXPECT_EQ(parsed->wire_version, kShimVersion);
}

TEST(ResponseShim, EpochCarriedOnUncacheableResponses) {
  ResponseShim shim;
  shim.verdict = Verdict::kRewrite;
  shim.policy_epoch = 42;
  auto parsed = ResponseShim::parse(shim.encode());
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->cacheable);
  EXPECT_EQ(parsed->policy_epoch, 42u);
}

TEST(ResponseShim, V2FramesStillParseAndAreNeverCacheable) {
  ResponseShim shim;
  shim.verdict = Verdict::kLimit;
  shim.policy_name = "Throttle";
  shim.limit_bytes_per_sec = 2048;
  shim.annotation = "legacy emitter";
  // Even if a v2 emitter somehow set the cache fields, the v2 frame
  // cannot carry them: they must come back zeroed.
  shim.cacheable = true;
  shim.cache_ttl_ms = 9999;
  shim.policy_epoch = 99;
  shim.wire_version = kShimVersionV2;
  auto bytes = shim.encode();
  EXPECT_EQ(bytes.size(), 68u + shim.annotation.size());
  std::size_t consumed = 0;
  auto parsed = ResponseShim::parse(bytes, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(parsed->wire_version, kShimVersionV2);
  EXPECT_FALSE(parsed->cacheable);
  EXPECT_EQ(parsed->cache_ttl_ms, 0u);
  EXPECT_EQ(parsed->policy_epoch, 0u);
  ASSERT_TRUE(parsed->limit_bytes_per_sec.has_value());
  EXPECT_EQ(*parsed->limit_bytes_per_sec, 2048);
  EXPECT_EQ(parsed->annotation, "legacy emitter");
}

TEST(ResponseShim, RejectsInvalidCacheScope) {
  ResponseShim shim;
  shim.verdict = Verdict::kForward;
  auto bytes = shim.encode();
  ASSERT_EQ(bytes.size(), 84u);
  bytes[68] = 3;  // One past kDstPort.
  EXPECT_FALSE(ResponseShim::parse(bytes));
}

TEST(ResponseShim, PolicyNameTruncatedTo32) {
  ResponseShim shim;
  shim.policy_name = std::string(64, 'P');
  auto parsed = ResponseShim::parse(shim.encode());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->policy_name, std::string(32, 'P'));
}

TEST(ResponseShim, AllVerdictOpcodesRoundTrip) {
  for (auto verdict :
       {Verdict::kForward, Verdict::kLimit, Verdict::kDrop,
        Verdict::kRedirect, Verdict::kReflect, Verdict::kRewrite}) {
    ResponseShim shim;
    shim.verdict = verdict;
    auto parsed = ResponseShim::parse(shim.encode());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->verdict, verdict);
  }
}

TEST(ResponseShim, RejectsInvalidOpcode) {
  ResponseShim shim;
  auto bytes = shim.encode();
  // The opcode lives right after preamble (8) + four-tuple (12).
  bytes[20] = 0;
  bytes[21] = 0;
  bytes[22] = 0;
  bytes[23] = 99;
  EXPECT_FALSE(ResponseShim::parse(bytes));
}

TEST(ResponseShim, ParseFromStreamPrefixOnly) {
  // The gateway scans a reassembled stream: shim followed by payload.
  ResponseShim shim;
  shim.verdict = Verdict::kRewrite;
  shim.policy_name = "Rustock";
  auto bytes = shim.encode();
  const std::size_t shim_len = bytes.size();
  auto trailing = util::to_bytes("HTTP/1.1 200 OK\r\n");
  bytes.insert(bytes.end(), trailing.begin(), trailing.end());
  std::size_t consumed = 0;
  auto parsed = ResponseShim::parse(bytes, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(consumed, shim_len);
}

TEST(CompleteShimLength, DetectsPartialAndComplete) {
  ResponseShim shim;
  shim.annotation = "xyz";
  auto bytes = shim.encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> partial(bytes.data(), cut);
    EXPECT_FALSE(complete_shim_length(partial, kTypeResponse))
        << "cut=" << cut;
  }
  auto full = complete_shim_length(bytes, kTypeResponse);
  ASSERT_TRUE(full);
  EXPECT_EQ(*full, bytes.size());
  EXPECT_FALSE(complete_shim_length(bytes, kTypeRequest));
}

TEST(VerdictNames, AllNamed) {
  EXPECT_STREQ(verdict_name(Verdict::kForward), "FORWARD");
  EXPECT_STREQ(verdict_name(Verdict::kLimit), "LIMIT");
  EXPECT_STREQ(verdict_name(Verdict::kDrop), "DROP");
  EXPECT_STREQ(verdict_name(Verdict::kRedirect), "REDIRECT");
  EXPECT_STREQ(verdict_name(Verdict::kReflect), "REFLECT");
  EXPECT_STREQ(verdict_name(Verdict::kRewrite), "REWRITE");
}

}  // namespace
}  // namespace gq::shim
