// Serial-vs-parallel differential gates for sharded farm execution
// (DESIGN.md §12). The tentpole claim is that the lockstep coordinator
// makes worker threading invisible: for a fixed seed, the merged
// observable event stream (obs::format_event lines across all shards)
// is byte-identical whether the shards run inline on one thread or on a
// pool — and two different seeds provably diverge, so "identical" is
// not "empty or constant". A teardown test covers the multi-threaded
// incarnation of the PR 3 use-after-free class: destroying the farm
// mid-flight, with cross-shard frames parked in mailboxes and pending
// closures on every shard loop.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sharded_farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

namespace gq {
namespace {

using util::Ipv4Addr;

constexpr Ipv4Addr kCcAddr(50, 8, 207, 91);

// The Grum spambot workload from bench/s1_scalability.cc, one subfarm
// per shard: inmates auto-infect, poll the C&C for a spam task
// (port 80, FORWARD — and the C&C host lives only on shard 0, so every
// other shard's poll crosses the bridged external segment), then spam
// port 25 (REFLECT into the shard-local banner sink).
void build_spam_shard(core::Farm& farm, std::size_t shard) {
  auto& sub = farm.add_subfarm(util::format("Shard%zu", shard));
  sub.add_catchall_sink();
  sinks::SmtpSinkConfig sink_config;
  sink_config.port = 2526;
  sub.add_smtp_sink(sink_config, "bannersmtpsink");
  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
  sub.containment().samples().add("grum.000.exe");
  sub.catalog().register_prototype(
      "grum.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "grum";
        config.c2 = {kCcAddr, 80};
        config.send_interval = util::seconds(2);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  sub.configure_containment(
      util::format("[VLAN %d-%d]\nDecider = Grum\nInfection = grum.*\n",
                   sub.router().config().vlan_first,
                   sub.router().config().vlan_last));
  for (int i = 0; i < 2; ++i) sub.create_inmate(inm::HostingKind::kVm);
}

struct RunResult {
  std::vector<std::string> lines;
  std::uint64_t cc_requests = 0;
  std::uint64_t cross_shard_messages = 0;
  unsigned effective_threads = 0;
};

RunResult run_spam_farm(std::uint64_t seed, unsigned threads,
                        std::size_t shards, util::Duration duration) {
  core::ShardedFarmOptions options;
  options.shards = shards;
  options.threads = threads;
  options.seed = seed;
  core::ShardedFarm farm(options, build_spam_shard);
  // The C&C anchor is homed on shard 0 and declared after the farm so
  // its HttpServer (which references the host stack) dies first.
  auto& cc_host = farm.shard(0).add_external_host("cc", kCcAddr);
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  farm.run_for(duration);

  RunResult result;
  result.lines = farm.merged_event_lines();
  result.cc_requests = cc.requests();
  result.cross_shard_messages = farm.lockstep_stats().messages;
  result.effective_threads = farm.threads();
  return result;
}

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(ShardedFarm, SerialAndParallelStreamsAreBitIdentical) {
  constexpr std::uint64_t kSeed = 0x5EED01;
  const auto duration = util::seconds(90);
  const RunResult serial = run_spam_farm(kSeed, 1, 4, duration);

  // The workload actually exercised what the gate claims to cover:
  // events flowed, remote shards reached the shard-0 C&C, and frames
  // crossed the bridges.
  ASSERT_FALSE(serial.lines.empty());
  EXPECT_GT(serial.cc_requests, 0u);
  EXPECT_GT(serial.cross_shard_messages, 0u);

  for (unsigned threads : {2u, 4u}) {
    const RunResult parallel = run_spam_farm(kSeed, threads, 4, duration);
    EXPECT_EQ(parallel.effective_threads, threads);
    EXPECT_EQ(parallel.cc_requests, serial.cc_requests);
    EXPECT_EQ(parallel.cross_shard_messages, serial.cross_shard_messages);
    ASSERT_EQ(joined(parallel.lines), joined(serial.lines))
        << "observable stream diverged at " << threads << " threads";
  }
}

TEST(ShardedFarm, DistinctSeedsProvablyDiverge) {
  const auto duration = util::seconds(90);
  const RunResult a = run_spam_farm(0x5EED01, 1, 2, duration);
  const RunResult b = run_spam_farm(0x0DD5EE, 1, 2, duration);
  ASSERT_FALSE(a.lines.empty());
  ASSERT_FALSE(b.lines.empty());
  // Without this, SerialAndParallelStreamsAreBitIdentical could pass
  // vacuously on a stream that ignores the seed entirely.
  EXPECT_NE(joined(a.lines), joined(b.lines));
}

TEST(ShardedFarm, TeardownMidFlightDropsCrossThreadClosures) {
  // Stop inside the spam cadence: TCP handshakes, retransmit timers,
  // and bridge mailbox frames are all live when the farm dies. The
  // assertion is the absence of use-after-free / data races — this test
  // exists to run under asan and the tsan lane.
  core::ShardedFarmOptions options;
  options.shards = 3;
  options.threads = 2;
  options.seed = 0x7EAF;
  auto farm =
      std::make_unique<core::ShardedFarm>(options, build_spam_shard);
  auto& cc_host = farm->shard(0).add_external_host("cc", kCcAddr);
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());
  // 35s = just past the 25s VM boot: DHCP binds done, auto-infection
  // and the first C&C polls/spam flows mid-handshake.
  farm->run_for(util::seconds(35));
  EXPECT_GT(farm->event_count(), 0u);
  farm.reset();
}

TEST(ShardedFarm, TeardownWithoutRunning) {
  core::ShardedFarmOptions options;
  options.shards = 2;
  options.threads = 2;
  core::ShardedFarm farm(options, build_spam_shard);
  // Builders scheduled power-on and DHCP closures that never run.
}

}  // namespace
}  // namespace gq
