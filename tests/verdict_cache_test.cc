// Gateway-side verdict cache (the tentpole): unit tests of the LRU/TTL
// container and full-farm integration tests of the hot path it removes —
// repeat flows matching a cacheable decision are resolved by the router
// without a containment-server shim round trip, REWRITE always takes the
// round trip, the safety filter still applies to cached verdicts, and
// the cache is invalidated on policy-epoch bumps and inmate
// revert/terminate triggers (the latter proven by an explicit
// escape-attempt case).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "gateway/verdict_cache.h"
#include "util/bytes.h"

namespace gq {
namespace {

using util::Endpoint;
using util::Ipv4Addr;

// --- VerdictCache unit tests ----------------------------------------------

const Endpoint kSrc{Ipv4Addr(10, 0, 0, 23), 1234};
const Endpoint kDst{Ipv4Addr(93, 184, 216, 34), 80};

gw::CachedVerdict entry_expiring(util::TimePoint at,
                                 shim::Verdict v = shim::Verdict::kForward) {
  gw::CachedVerdict entry;
  entry.verdict = v;
  entry.policy_name = "Unit";
  entry.expires = at;
  return entry;
}

TEST(VerdictCache, ExactScopeMatchesFullTupleOnly) {
  gw::VerdictCache cache(16);
  const auto horizon = util::TimePoint{} + util::minutes(1);
  cache.insert(pkt::FlowProto::kTcp, 16, kSrc, kDst,
               shim::CacheScope::kExactFlow, entry_expiring(horizon));
  const auto now = util::TimePoint{};
  EXPECT_NE(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, kDst, now), nullptr);
  // Any deviation in the tuple, VLAN, or protocol misses.
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kTcp, 16,
                         Endpoint{kSrc.addr, 1235}, kDst, now),
            nullptr);
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kTcp, 17, kSrc, kDst, now), nullptr);
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kUdp, 16, kSrc, kDst, now), nullptr);
}

TEST(VerdictCache, DstEndpointScopeIgnoresSource) {
  gw::VerdictCache cache(16);
  const auto horizon = util::TimePoint{} + util::minutes(1);
  cache.insert(pkt::FlowProto::kTcp, 16, kSrc, kDst,
               shim::CacheScope::kDstEndpoint, entry_expiring(horizon));
  const auto now = util::TimePoint{};
  // Different inmate source port, same destination endpoint: hit.
  EXPECT_NE(cache.lookup(pkt::FlowProto::kTcp, 16,
                         Endpoint{kSrc.addr, 9999}, kDst, now),
            nullptr);
  // Different destination port: miss.
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc,
                         Endpoint{kDst.addr, 443}, now),
            nullptr);
}

TEST(VerdictCache, DstPortScopeIgnoresAddresses) {
  gw::VerdictCache cache(16);
  const auto horizon = util::TimePoint{} + util::minutes(1);
  cache.insert(pkt::FlowProto::kTcp, 16, kSrc, kDst,
               shim::CacheScope::kDstPort, entry_expiring(horizon));
  const auto now = util::TimePoint{};
  // Entirely different destination host, same port: hit (scan-class).
  EXPECT_NE(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc,
                         Endpoint{Ipv4Addr(1, 2, 3, 4), 80}, now),
            nullptr);
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc,
                         Endpoint{Ipv4Addr(1, 2, 3, 4), 81}, now),
            nullptr);
  // The VLAN still partitions even the widest scope.
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kTcp, 17, kSrc, kDst, now), nullptr);
}

TEST(VerdictCache, NarrowerScopeWinsWhenBothMatch) {
  gw::VerdictCache cache(16);
  const auto horizon = util::TimePoint{} + util::minutes(1);
  cache.insert(pkt::FlowProto::kTcp, 16, kSrc, kDst,
               shim::CacheScope::kDstPort,
               entry_expiring(horizon, shim::Verdict::kDrop));
  cache.insert(pkt::FlowProto::kTcp, 16, kSrc, kDst,
               shim::CacheScope::kExactFlow,
               entry_expiring(horizon, shim::Verdict::kForward));
  const auto* hit =
      cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, kDst, util::TimePoint{});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->verdict, shim::Verdict::kForward);
}

TEST(VerdictCache, ExpiredEntriesAreErasedLazilyAndCounted) {
  gw::VerdictCache cache(16);
  cache.insert(pkt::FlowProto::kTcp, 16, kSrc, kDst,
               shim::CacheScope::kExactFlow,
               entry_expiring(util::TimePoint{} + util::seconds(10)));
  EXPECT_EQ(cache.size(), 1u);
  std::uint64_t expired = 0;
  // At exactly the expiry instant the entry is dead (expires is an
  // exclusive bound).
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, kDst,
                         util::TimePoint{} + util::seconds(10), &expired),
            nullptr);
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerdictCache, LruBoundedEviction) {
  gw::VerdictCache cache(2);
  const auto horizon = util::TimePoint{} + util::minutes(1);
  const auto now = util::TimePoint{};
  auto dst = [](std::uint8_t i) {
    return Endpoint{Ipv4Addr(93, 184, 216, i), 80};
  };
  EXPECT_EQ(cache.insert(pkt::FlowProto::kTcp, 16, kSrc, dst(1),
                         shim::CacheScope::kExactFlow,
                         entry_expiring(horizon)),
            0u);
  EXPECT_EQ(cache.insert(pkt::FlowProto::kTcp, 16, kSrc, dst(2),
                         shim::CacheScope::kExactFlow,
                         entry_expiring(horizon)),
            0u);
  // Touch dst(1) so dst(2) is the LRU victim.
  EXPECT_NE(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, dst(1), now),
            nullptr);
  EXPECT_EQ(cache.insert(pkt::FlowProto::kTcp, 16, kSrc, dst(3),
                         shim::CacheScope::kExactFlow,
                         entry_expiring(horizon)),
            1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, dst(1), now),
            nullptr);
  EXPECT_EQ(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, dst(2), now),
            nullptr);
  EXPECT_NE(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, dst(3), now),
            nullptr);
}

TEST(VerdictCache, FlushAndFlushVlan) {
  gw::VerdictCache cache(16);
  const auto horizon = util::TimePoint{} + util::minutes(1);
  cache.insert(pkt::FlowProto::kTcp, 16, kSrc, kDst,
               shim::CacheScope::kExactFlow, entry_expiring(horizon));
  cache.insert(pkt::FlowProto::kTcp, 17, kSrc, kDst,
               shim::CacheScope::kDstPort, entry_expiring(horizon));
  cache.insert(pkt::FlowProto::kUdp, 17, kSrc, kDst,
               shim::CacheScope::kDstEndpoint, entry_expiring(horizon));
  EXPECT_EQ(cache.flush_vlan(17), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.lookup(pkt::FlowProto::kTcp, 16, kSrc, kDst,
                         util::TimePoint{}),
            nullptr);
  EXPECT_EQ(cache.flush(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

// --- Full-farm integration -------------------------------------------------

// A policy whose decisions opt into caching (never on REWRITE — the
// containment server refuses that combination anyway).
class CacheablePolicy : public cs::Policy {
 public:
  CacheablePolicy(shim::Verdict verdict, shim::CacheScope scope,
                  std::uint32_t ttl_ms = 0)
      : cs::Policy("Cacheable"), verdict_(verdict), scope_(scope),
        ttl_ms_(ttl_ms) {}

  cs::Decision decide(const cs::FlowInfo&) override {
    if (deny_all_) return cs::Decision::drop("post-revert deny");
    switch (verdict_) {
      case shim::Verdict::kForward:
        return cs::Decision::forward().cached(scope_, ttl_ms_);
      case shim::Verdict::kDrop:
        return cs::Decision::drop("denied").cached(scope_, ttl_ms_);
      default:
        return cs::Decision::drop("unexpected");
    }
  }

  // Flip to deny-everything (uncached): models the operator tightening
  // policy after an inmate lifecycle action.
  void deny_all() { deny_all_ = true; }

 private:
  shim::Verdict verdict_;
  bool deny_all_ = false;
  shim::CacheScope scope_;
  std::uint32_t ttl_ms_;
};

struct CacheFarm {
  core::Farm farm;
  core::Subfarm* sub = nullptr;
  net::HostStack* web = nullptr;
  inm::Inmate* inmate = nullptr;
  int web_accepts = 0;

  explicit CacheFarm(int inmates = 1) {
    web = &farm.add_external_host("web", Ipv4Addr(93, 184, 216, 34));
    web->listen(80, [this](std::shared_ptr<net::TcpConnection> conn) {
      ++web_accepts;
      std::weak_ptr<net::TcpConnection> weak = conn;
      conn->on_data = [weak](std::span<const std::uint8_t> d) {
        if (auto c = weak.lock()) c->send(d);
      };
    });
    sub = &farm.add_subfarm("Cache");
    for (int i = 0; i < inmates; ++i) {
      auto& created = sub->create_inmate(inm::HostingKind::kVm);
      if (!inmate) inmate = &created;
    }
    farm.run_for(util::minutes(2));  // Boot + DHCP.
  }

  void bind(std::shared_ptr<cs::Policy> policy) {
    sub->bind_policy(sub->router().config().vlan_first,
                     sub->router().config().vlan_last, std::move(policy));
  }

  // One echo exchange against web:80; returns the bytes echoed back.
  std::string exchange(const std::string& payload) {
    std::string answer;
    auto conn = inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 80});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak, payload] {
      if (auto c = weak.lock()) c->send(payload);
    };
    conn->on_data = [weak, &answer](std::span<const std::uint8_t> d) {
      answer.append(reinterpret_cast<const char*>(d.data()), d.size());
      if (auto c = weak.lock()) c->close();
    };
    farm.run_for(util::seconds(30));
    return answer;
  }

  std::uint64_t counter(const std::string& name) {
    const auto* c = farm.metrics().find_counter("gw.Cache." + name);
    return c ? c->value() : 0;
  }
};

TEST(VerdictCacheFarm, RepeatFlowsSkipTheShimRoundTrip) {
  CacheFarm f;
  f.bind(std::make_shared<CacheablePolicy>(shim::Verdict::kForward,
                                           shim::CacheScope::kDstEndpoint));
  std::vector<bool> cached_flags;
  f.farm.telemetry().bus().subscribe([&](const obs::FarmEvent& e) {
    if (e.kind == obs::FarmEvent::Kind::kFlowVerdict)
      cached_flags.push_back(e.verdict_cached);
  });

  EXPECT_EQ(f.exchange("first"), "first");
  const auto decided_after_first = f.sub->containment().flows_decided();
  EXPECT_EQ(decided_after_first, 1u);
  EXPECT_EQ(f.counter("cache_miss"), 1u);
  EXPECT_EQ(f.counter("cache_insert"), 1u);

  // Second and third flows to the same destination endpoint: answered
  // from the cache — the containment server never sees them, yet the
  // data path works end-to-end.
  EXPECT_EQ(f.exchange("second"), "second");
  EXPECT_EQ(f.exchange("third"), "third");
  EXPECT_EQ(f.sub->containment().flows_decided(), decided_after_first);
  EXPECT_EQ(f.sub->router().cache_hits(), 2u);
  EXPECT_EQ(f.web_accepts, 3);

  // The event stream labels each verdict with its source.
  ASSERT_EQ(cached_flags.size(), 3u);
  EXPECT_FALSE(cached_flags[0]);
  EXPECT_TRUE(cached_flags[1]);
  EXPECT_TRUE(cached_flags[2]);

  // And the per-flow trace index carries the same annotation.
  std::size_t cached_in_trace = 0;
  for (const auto& flow : f.sub->router().trace().index().flows())
    if (flow.has_verdict && flow.verdict_cached) ++cached_in_trace;
  EXPECT_EQ(cached_in_trace, 2u);
}

TEST(VerdictCacheFarm, NegativeDropEntriesAreServedFromCache) {
  CacheFarm f;
  f.bind(std::make_shared<CacheablePolicy>(shim::Verdict::kDrop,
                                           shim::CacheScope::kDstEndpoint));
  int resets = 0;
  for (int i = 0; i < 3; ++i) {
    auto conn = f.inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 80});
    conn->on_reset = [&] { ++resets; };
    f.farm.run_for(util::seconds(15));
  }
  EXPECT_EQ(resets, 3);
  EXPECT_EQ(f.web_accepts, 0);  // Containment held every time.
  EXPECT_EQ(f.sub->containment().flows_decided(), 1u);
  EXPECT_EQ(f.sub->router().cache_hits(), 2u);
}

TEST(VerdictCacheFarm, RewriteAlwaysTakesTheShimRoundTrip) {
  // Even a policy that (incorrectly) asks for its REWRITE decisions to
  // be cached gets a shim round trip per flow: the containment server
  // refuses to mark REWRITE responses cacheable, so a warm cache never
  // forms and every flow is decided afresh.
  class GreedyRewritePolicy : public cs::Policy {
   public:
    GreedyRewritePolicy() : cs::Policy("GreedyRewrite") {}
    cs::Decision decide(const cs::FlowInfo&) override {
      return cs::Decision::rewrite("proxied").cached(
          shim::CacheScope::kDstEndpoint);
    }
    std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
        const cs::FlowInfo&) override {
      class Banner : public cs::RewriteHandler {
        void on_inmate_data(cs::RewriteContext& ctx,
                            std::span<const std::uint8_t>) override {
          ctx.send_to_inmate(std::string_view("250 proxied\r\n"));
        }
      };
      return std::make_unique<Banner>();
    }
  };
  CacheFarm f;
  f.bind(std::make_shared<GreedyRewritePolicy>());
  EXPECT_EQ(f.exchange("HELO a\r\n"), "250 proxied\r\n");
  EXPECT_EQ(f.exchange("HELO b\r\n"), "250 proxied\r\n");
  EXPECT_EQ(f.exchange("HELO c\r\n"), "250 proxied\r\n");
  // One decision per flow — a warm cache cannot short-circuit REWRITE.
  EXPECT_EQ(f.sub->containment().flows_decided(), 3u);
  EXPECT_EQ(f.sub->router().cache_hits(), 0u);
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 0u);
}

TEST(VerdictCacheFarm, PolicyEpochBumpFlushesTheCache) {
  CacheFarm f;
  f.bind(std::make_shared<CacheablePolicy>(shim::Verdict::kForward,
                                           shim::CacheScope::kDstEndpoint));
  EXPECT_EQ(f.exchange("warm"), "warm");
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 1u);

  // A containment reconfiguration bumps the policy epoch: every cached
  // verdict predates the new policy set and must go.
  f.sub->configure_containment("");
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 0u);
  EXPECT_GE(f.counter("cache_flush"), 1u);

  // The next flow takes a fresh shim round trip under the new epoch.
  f.bind(std::make_shared<CacheablePolicy>(shim::Verdict::kForward,
                                           shim::CacheScope::kDstEndpoint));
  EXPECT_EQ(f.exchange("fresh"), "fresh");
  EXPECT_EQ(f.sub->containment().flows_decided(), 2u);
}

TEST(VerdictCacheFarm, RevertTriggerFlushesVlanAndBlocksEscape) {
  // The explicit escape-attempt case: an inmate earns a cached FORWARD,
  // is then reverted (its trigger fires REVERT), and the policy flips to
  // deny-all — modelling "the reverted image must not inherit the old
  // machine's verdicts". If the revert did not flush the VLAN's cache,
  // the stale FORWARD entry would admit the new flow upstream: a
  // containment escape.
  CacheFarm f;
  auto policy = std::make_shared<CacheablePolicy>(
      shim::Verdict::kForward, shim::CacheScope::kDstEndpoint);
  f.bind(policy);
  EXPECT_EQ(f.exchange("before"), "before");
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 1u);
  EXPECT_EQ(f.web_accepts, 1);

  // The inmate's activity trigger fires a REVERT lifecycle action.
  const std::uint16_t vlan = f.sub->router().config().vlan_first;
  obs::FarmEvent trigger;
  trigger.kind = obs::FarmEvent::Kind::kTriggerFired;
  trigger.subfarm = f.sub->name();
  trigger.vlan = vlan;
  trigger.trigger_action = "REVERT";
  f.farm.telemetry().bus().publish(trigger);
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 0u);
  EXPECT_GE(f.counter("cache_flush"), 1u);

  // Post-revert the policy denies everything. The escape attempt: a
  // flow to the previously-cached destination.
  policy->deny_all();
  bool reset = false;
  auto conn = f.inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 80});
  conn->on_reset = [&] { reset = true; };
  f.farm.run_for(util::seconds(15));
  EXPECT_TRUE(reset);
  EXPECT_EQ(f.web_accepts, 1);  // Nothing new escaped upstream.
  EXPECT_EQ(f.sub->containment().flows_decided(), 2u);  // Fresh decision.
}

TEST(VerdictCacheFarm, SafetyFilterStillCapsCachedVerdicts) {
  // Cached verdicts must not bypass the connection-rate caps: the
  // safety filter runs before the cache lookup, so hammering one
  // destination trips it even when nearly every verdict is a cache hit.
  CacheFarm f;
  f.bind(std::make_shared<CacheablePolicy>(shim::Verdict::kForward,
                                           shim::CacheScope::kDstEndpoint));
  // 600 connects to one destination, staggered 50ms apart so the cache
  // warms after flow #1 — all inside the one-minute safety window whose
  // per-destination cap is 500.
  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  const auto start = f.farm.loop().now();
  for (int i = 0; i < 600; ++i) {
    f.farm.loop().schedule_at(start + util::milliseconds(50 * i), [&f, &conns] {
      auto conn = f.inmate->host().connect({Ipv4Addr(93, 184, 216, 34), 80});
      std::weak_ptr<net::TcpConnection> weak = conn;
      conn->on_connected = [weak] {
        if (auto c = weak.lock()) c->close();
      };
      conns.push_back(std::move(conn));
    });
  }
  f.farm.run_for(util::seconds(60));
  EXPECT_GT(f.sub->router().safety().rejected(), 0u);
  EXPECT_GT(f.sub->router().cache_hits(), 400u);
  // The containment server decided only a handful of flows — the rest
  // were cache hits or safety rejections.
  EXPECT_LT(f.sub->containment().flows_decided(), 10u);
}

TEST(VerdictCacheFarm, TtlExpiryForcesFreshDecision) {
  CacheFarm f;
  f.bind(std::make_shared<CacheablePolicy>(
      shim::Verdict::kForward, shim::CacheScope::kDstEndpoint,
      /*ttl_ms=*/40000));
  EXPECT_EQ(f.exchange("one"), "one");
  EXPECT_EQ(f.sub->containment().flows_decided(), 1u);
  // exchange() advances simulated time 30s per call: the second flow
  // lands inside the 40s TTL and is served from cache...
  EXPECT_EQ(f.exchange("two"), "two");
  EXPECT_EQ(f.sub->containment().flows_decided(), 1u);
  // ...while the third, 60s in, finds only an expired entry.
  EXPECT_EQ(f.exchange("three"), "three");
  EXPECT_EQ(f.sub->containment().flows_decided(), 2u);
  EXPECT_GE(f.counter("cache_expire"), 1u);
}

TEST(VerdictCacheFarm, DisablingTheCacheRestoresPerFlowDecisions) {
  CacheFarm f;
  f.bind(std::make_shared<CacheablePolicy>(shim::Verdict::kForward,
                                           shim::CacheScope::kDstEndpoint));
  f.sub->router().set_verdict_cache_enabled(false);
  EXPECT_EQ(f.exchange("a"), "a");
  EXPECT_EQ(f.exchange("b"), "b");
  EXPECT_EQ(f.sub->containment().flows_decided(), 2u);
  EXPECT_EQ(f.sub->router().cache_hits(), 0u);
  EXPECT_EQ(f.sub->router().verdict_cache().size(), 0u);
}

TEST(VerdictCacheFarm, UdpVerdictsAreCachedToo) {
  CacheFarm f;
  auto echo = f.web->udp_open(53);
  echo->on_datagram = [echo](util::Endpoint from,
                             std::vector<std::uint8_t> data) {
    echo->send_to(from, data);
  };
  f.bind(std::make_shared<CacheablePolicy>(shim::Verdict::kForward,
                                           shim::CacheScope::kDstEndpoint));
  int answers = 0;
  std::vector<std::shared_ptr<net::UdpSocket>> sockets;
  for (int i = 0; i < 3; ++i) {
    auto sock = f.inmate->host().udp_open(0);
    sock->on_datagram = [&](util::Endpoint, std::vector<std::uint8_t>) {
      ++answers;
    };
    sock->send_to({Ipv4Addr(93, 184, 216, 34), 53}, util::to_bytes("q"));
    sockets.push_back(std::move(sock));
    f.farm.run_for(util::seconds(10));
  }
  EXPECT_EQ(answers, 3);
  EXPECT_EQ(f.sub->containment().flows_decided(), 1u);
  EXPECT_EQ(f.sub->router().cache_hits(), 2u);
}

}  // namespace
}  // namespace gq
