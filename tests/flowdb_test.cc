// FlowDB store + query engine coverage (src/flowdb). The FlowDbSmoke
// suite doubles as the `flowdb_smoke` ctest lane: encode/parse/open
// round trips, predicate scans checked against brute force over
// reconstructed rows, the serial-vs-parallel bit-identity contract at
// 1/2/4 threads, aggregation kernels, and the verdict-distribution
// diff gate. FlowDbReject covers the load-time rejection contract:
// corrupt footers, truncation, and self-declared-length lies must all
// come back nullopt, never a crash or over-read.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "flowdb/flowdb.h"
#include "flowdb/query.h"
#include "flowdb/store.h"
#include "obs/metrics.h"
#include "trace/flow_index.h"
#include "util/rng.h"

namespace gq {
namespace {

flowdb::Row sample_row(std::uint64_t i, util::Rng& rng) {
  flowdb::Row row;
  row.proto = rng.chance(0.7) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
  row.src = {util::Ipv4Addr(10, 9, 0, static_cast<std::uint8_t>(i % 200)),
             static_cast<std::uint16_t>(1024 + rng.below(60000))};
  row.dst = {util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
             static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 25)};
  row.vlan = static_cast<std::uint16_t>(100 + rng.below(8));
  const char* tenants[] = {"", "acme", "umbrella", "tyrell"};
  row.tenant = tenants[rng.below(4)];
  row.job = rng.below(32);
  if (rng.chance(0.8)) {
    row.verdict = static_cast<std::uint8_t>(1 + rng.below(6));
    row.source = static_cast<std::uint8_t>(rng.below(3));
    row.policy = rng.chance(0.5) ? "quarantine" : "default";
  }
  row.tap = rng.chance(0.5) ? "upstream" : "job-tap";
  row.packets = 1 + rng.below(100);
  row.bytes = row.packets * (60 + rng.below(1400));
  row.first_usec = static_cast<std::int64_t>(i) * 500;
  row.last_usec = row.first_usec + static_cast<std::int64_t>(rng.below(10000));
  const auto locs = rng.below(4);
  for (std::uint64_t l = 0; l < locs; ++l)
    row.locations.push_back({rng.below(8), rng.below(4096)});
  return row;
}

flowdb::Writer sample_writer(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  flowdb::Writer writer;
  for (std::size_t i = 0; i < rows; ++i) writer.add(sample_row(i, rng));
  return writer;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FlowDbSmoke, EncodeParseRoundTripPreservesEveryRow) {
  util::Rng rng(0xFDB0001);
  flowdb::Writer writer;
  std::vector<flowdb::Row> originals;
  for (std::size_t i = 0; i < 512; ++i) {
    originals.push_back(sample_row(i, rng));
    writer.add(originals.back());
  }
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  ASSERT_EQ(reader->rows(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i)
    EXPECT_EQ(reader->row(i), originals[i]) << "row " << i;
}

TEST(FlowDbSmoke, MmapOpenMatchesInMemoryParse) {
  const auto writer = sample_writer(256, 0xFDB0002);
  const auto bytes = writer.encode();
  const auto path = temp_path("flowdb_test_open.fdb");
  ASSERT_TRUE(writer.save(path));
  auto mapped = flowdb::Reader::open(path);
  auto parsed = flowdb::Reader::parse(bytes);
  ASSERT_TRUE(mapped);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(mapped->rows(), parsed->rows());
  EXPECT_EQ(mapped->file_bytes(), bytes.size());
  for (std::uint64_t i = 0; i < mapped->rows(); ++i)
    ASSERT_EQ(mapped->row(i), parsed->row(i)) << "row " << i;
  std::filesystem::remove(path);
}

TEST(FlowDbSmoke, EncodeIsDeterministic) {
  EXPECT_EQ(sample_writer(300, 0xFDB0003).encode(),
            sample_writer(300, 0xFDB0003).encode());
}

TEST(FlowDbSmoke, ScanPredicatesMatchBruteForce) {
  const auto writer = sample_writer(20'000, 0xFDB0004);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);

  std::vector<flowdb::Filter> filters;
  flowdb::Filter f;
  f.verdict = static_cast<std::uint8_t>(shim::Verdict::kDrop);
  filters.push_back(f);
  f = {};
  f.verdict = 0;  // Never-annotated flows.
  filters.push_back(f);
  f = {};
  f.tenant = "acme";
  filters.push_back(f);
  f = {};
  f.tenant = "no-such-tenant";  // Absent from dictionary: matches nothing.
  filters.push_back(f);
  f = {};
  f.port = 80;
  filters.push_back(f);
  f = {};
  f.prefix = util::Ipv4Net(util::Ipv4Addr(10, 9, 0, 0), 16);
  filters.push_back(f);
  f = {};
  f.since_usec = 1'000'000;
  f.until_usec = 3'000'000;
  filters.push_back(f);
  f = {};
  f.proto = pkt::FlowProto::kUdp;
  f.vlan = 103;
  filters.push_back(f);
  f = {};
  f.tenant = "umbrella";
  f.verdict = static_cast<std::uint8_t>(shim::Verdict::kForward);
  f.source = static_cast<std::uint8_t>(shim::VerdictSource::kTable);
  filters.push_back(f);

  for (std::size_t fi = 0; fi < filters.size(); ++fi) {
    const auto& filter = filters[fi];
    const auto matches = flowdb::scan(*reader, filter);
    // Brute force over reconstructed rows.
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < reader->rows(); ++i) {
      const auto row = reader->row(i);
      if (filter.verdict && row.verdict != *filter.verdict) continue;
      if (filter.source && (row.verdict == 0 || row.source != *filter.source))
        continue;
      if (filter.tenant && row.tenant != *filter.tenant) continue;
      if (filter.port && row.src.port != *filter.port &&
          row.dst.port != *filter.port)
        continue;
      if (filter.prefix && !filter.prefix->contains(row.src.addr) &&
          !filter.prefix->contains(row.dst.addr))
        continue;
      if (filter.vlan && row.vlan != *filter.vlan) continue;
      if (filter.proto && row.proto != *filter.proto) continue;
      if (filter.since_usec && row.last_usec < *filter.since_usec) continue;
      if (filter.until_usec && row.first_usec > *filter.until_usec) continue;
      expected.push_back(i);
    }
    EXPECT_EQ(matches, expected) << "filter " << fi;
  }
}

TEST(FlowDbSmoke, ParallelScanBitIdenticalAt124Threads) {
  // > kScanChunk rows so the parallel path actually splits chunks.
  const auto writer = sample_writer(50'000, 0xFDB0005);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  flowdb::Filter filter;
  filter.port = 80;
  const auto serial = flowdb::scan(*reader, filter);
  EXPECT_FALSE(serial.empty());
  for (const unsigned threads : {2u, 4u}) {
    flowdb::ScanOptions options;
    options.threads = threads;
    EXPECT_EQ(flowdb::scan(*reader, filter, options), serial)
        << threads << " threads";
  }
}

TEST(FlowDbSmoke, AggregatesMatchBruteForce) {
  const auto writer = sample_writer(10'000, 0xFDB0006);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  for (const auto group :
       {flowdb::GroupBy::kVerdict, flowdb::GroupBy::kTenant,
        flowdb::GroupBy::kPolicy, flowdb::GroupBy::kTap}) {
    const auto aggs = flowdb::aggregate_all(*reader, group);
    std::uint64_t flows = 0, packets = 0, bytes = 0;
    for (const auto& agg : aggs) {
      flows += agg.flows;
      packets += agg.packets;
      bytes += agg.bytes;
      EXPECT_FALSE(agg.label.empty());
    }
    EXPECT_EQ(flows, reader->rows());
    std::uint64_t want_packets = 0, want_bytes = 0;
    for (const auto p : reader->packets()) want_packets += p;
    for (const auto b : reader->bytes()) want_bytes += b;
    EXPECT_EQ(packets, want_packets);
    EXPECT_EQ(bytes, want_bytes);
    // Label-sorted, no duplicates.
    for (std::size_t i = 1; i < aggs.size(); ++i)
      EXPECT_LT(aggs[i - 1].label, aggs[i].label);
  }
}

TEST(FlowDbSmoke, DiffVerdictsGatesPerturbedDistributions) {
  const auto base = sample_writer(8'000, 0xFDB0007);
  auto a = flowdb::Reader::parse(base.encode());
  auto b = flowdb::Reader::parse(base.encode());
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  // Same store: identical distribution, zero delta.
  EXPECT_TRUE(flowdb::diff_verdicts(*a, *b).within(0.0));

  // Perturb: force every verdict to kDrop.
  util::Rng rng(0xFDB0007);
  flowdb::Writer perturbed;
  for (std::size_t i = 0; i < 8'000; ++i) {
    auto row = sample_row(i, rng);
    row.verdict = static_cast<std::uint8_t>(shim::Verdict::kDrop);
    row.source = static_cast<std::uint8_t>(shim::VerdictSource::kShim);
    perturbed.add(std::move(row));
  }
  auto c = flowdb::Reader::parse(perturbed.encode());
  ASSERT_TRUE(c);
  const auto diff = flowdb::diff_verdicts(*a, *c);
  EXPECT_FALSE(diff.within(0.02));
  EXPECT_GT(diff.max_delta, 0.1);
}

TEST(FlowDbSmoke, TenantJobCarryFromArchiveIntoStore) {
  trace::FlowIndex index;
  for (int i = 0; i < 10; ++i) {
    trace::FlowRecord record;
    record.key.proto = pkt::FlowProto::kTcp;
    record.key.src = {util::Ipv4Addr(10, 9, 0, 1), std::uint16_t(1000 + i)};
    record.key.dst = {util::Ipv4Addr(192, 150, 187, 12), 80};
    record.tenant = i % 2 ? "acme" : "umbrella";
    record.job = 40 + i;
    record.packets = 3;
    record.bytes = 300;
    if (i % 3 == 0) {
      record.has_verdict = true;
      record.verdict = shim::Verdict::kRewrite;
      record.verdict_source = shim::VerdictSource::kTable;
      record.policy_name = "tables";
    }
    index.restore(std::move(record));
  }
  flowdb::Writer writer;
  writer.add_index(index, "job-tap");
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  flowdb::Filter by_tenant;
  by_tenant.tenant = "acme";
  EXPECT_EQ(flowdb::scan(*reader, by_tenant).size(), 5u);
  flowdb::Filter by_job;
  by_job.job = 43;
  const auto match = flowdb::scan(*reader, by_job);
  ASSERT_EQ(match.size(), 1u);
  EXPECT_EQ(reader->row(match[0]).tenant, "acme");
  flowdb::Filter by_source;
  by_source.source = static_cast<std::uint8_t>(shim::VerdictSource::kTable);
  EXPECT_EQ(flowdb::scan(*reader, by_source).size(), 4u);
}

TEST(FlowDbSmoke, WriterPublishesMetrics) {
  obs::MetricsRegistry metrics;
  util::Rng rng(0xFDB0008);
  flowdb::Writer writer(&metrics);
  for (std::size_t i = 0; i < 32; ++i) writer.add(sample_row(i, rng));
  const auto bytes = writer.encode();
  EXPECT_EQ(metrics.counter("flowdb.rows_written").value(), 32u);
  EXPECT_EQ(metrics.counter("flowdb.bytes_written").value(), bytes.size());
  flowdb::ScanOptions options;
  options.metrics = &metrics;
  auto reader = flowdb::Reader::parse(bytes);
  ASSERT_TRUE(reader);
  flowdb::scan(*reader, {}, options);
  EXPECT_EQ(metrics.counter("flowdb.scans").value(), 1u);
  EXPECT_EQ(metrics.counter("flowdb.rows_scanned").value(), 32u);
  EXPECT_EQ(metrics.counter("flowdb.rows_matched").value(), 32u);
}

// --- Rejection contract ---------------------------------------------------

TEST(FlowDbReject, CorruptFooterHashRejected) {
  auto bytes = sample_writer(64, 0xFDB0101).encode();
  // Flip one payload byte: the footer hash no longer matches.
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(flowdb::Reader::parse(std::move(bytes)));
}

TEST(FlowDbReject, TruncationAlwaysRejected) {
  const auto bytes = sample_writer(64, 0xFDB0102).encode();
  util::Rng rng(0xFDB0102);
  for (int i = 0; i < 200; ++i) {
    const auto cut = rng.below(bytes.size());  // Strictly shorter.
    EXPECT_FALSE(flowdb::Reader::parse(
        {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)}))
        << "prefix " << cut;
  }
}

TEST(FlowDbReject, SelfDeclaredLengthLiesRejected) {
  // Corrupt individual header fields, then re-seal the footer hash so
  // only the header validation (not the integrity check) can catch it.
  const auto pristine = sample_writer(64, 0xFDB0103).encode();
  const auto reseal = [](std::vector<std::uint8_t> bytes) {
    const std::uint64_t footer_offset = bytes.size() - 16;
    const std::uint64_t hash =
        flowdb::fnv1a({bytes.data(), footer_offset});
    std::memcpy(bytes.data() + footer_offset, &hash, 8);
    return bytes;
  };
  const auto poke_u64 = [&](std::size_t offset, std::uint64_t value) {
    auto bytes = pristine;
    std::memcpy(bytes.data() + offset, &value, 8);
    return reseal(std::move(bytes));
  };
  // FileHeader field offsets (see flowdb.h): row_count @16,
  // columns_offset @24, dict_offset @32, dict_count @40, blob_offset
  // @48, blob_bytes @56, loc_offset @64, loc_count @72,
  // footer_offset @80.
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(16, 1ull << 40)))
      << "row_count lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(24, pristine.size() * 2)))
      << "columns_offset lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(24, 12)))
      << "misaligned columns_offset";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(32, pristine.size() * 2)))
      << "dict_offset lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(40, 1ull << 40)))
      << "dict_count lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(56, 1ull << 40)))
      << "blob_bytes lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(72, 1ull << 40)))
      << "loc_count lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(80, pristine.size())))
      << "footer_offset lie";
  // Control: resealing without corruption still parses.
  EXPECT_TRUE(flowdb::Reader::parse(reseal(pristine)));
}

TEST(FlowDbReject, BadMagicAndVersionRejected) {
  const auto pristine = sample_writer(8, 0xFDB0104).encode();
  {
    auto bytes = pristine;
    bytes[0] ^= 0xFF;
    EXPECT_FALSE(flowdb::Reader::parse(std::move(bytes)));
  }
  {
    auto bytes = pristine;
    bytes[8] = 0x7F;  // version
    EXPECT_FALSE(flowdb::Reader::parse(std::move(bytes)));
  }
  EXPECT_FALSE(flowdb::Reader::parse({}));
  EXPECT_FALSE(flowdb::Reader::open(temp_path("flowdb_no_such_store.fdb")));
}

TEST(FlowDbReject, LyingLocationsAreClampedNotOverRead) {
  // A row whose loc_start/loc_count point past the shared location
  // array must come back clamped (possibly empty), never over-read.
  flowdb::Writer writer;
  util::Rng rng(0xFDB0105);
  for (std::size_t i = 0; i < 4; ++i) writer.add(sample_row(i, rng));
  auto bytes = writer.encode();
  auto pristine = flowdb::Reader::parse(bytes);
  ASSERT_TRUE(pristine);
  for (std::uint64_t i = 0; i < pristine->rows(); ++i) {
    const auto locs = pristine->locations_of(i);
    EXPECT_LE(locs.size(), 3u);
  }
  EXPECT_TRUE(pristine->locations_of(999).empty());
}

TEST(FlowDbSmoke, EmptyStoreRoundTrips) {
  flowdb::Writer writer;
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  EXPECT_EQ(reader->rows(), 0u);
  EXPECT_TRUE(flowdb::scan(*reader, {}).empty());
  EXPECT_TRUE(flowdb::aggregate_all(*reader, flowdb::GroupBy::kVerdict)
                  .empty());
}

// --- Zone-map / bloom pruning ---------------------------------------------

/// The canned filter set every scan test shares: the same queries the
/// brute-force differential exercises, now also run prune-on vs
/// prune-off (the skip-scan correctness contract: pruning may only
/// skip work, never change results).
std::vector<flowdb::Filter> canned_filters() {
  std::vector<flowdb::Filter> filters;
  flowdb::Filter f;
  f.verdict = static_cast<std::uint8_t>(shim::Verdict::kDrop);
  filters.push_back(f);
  f = {};
  f.verdict = 0;
  filters.push_back(f);
  f = {};
  f.tenant = "acme";
  filters.push_back(f);
  f = {};
  f.tenant = "no-such-tenant";
  filters.push_back(f);
  f = {};
  f.port = 80;
  filters.push_back(f);
  f = {};
  f.prefix = util::Ipv4Net(util::Ipv4Addr(10, 9, 0, 0), 16);
  filters.push_back(f);
  f = {};
  f.since_usec = 1'000'000;
  f.until_usec = 3'000'000;
  filters.push_back(f);
  f = {};
  f.since_usec = 1'000'000'000;  // Past every row: fully prunable.
  filters.push_back(f);
  f = {};
  f.proto = pkt::FlowProto::kUdp;
  f.vlan = 103;
  filters.push_back(f);
  f = {};
  f.vlan = 9999;  // Outside every zone's vlan range.
  filters.push_back(f);
  f = {};
  f.endpoint = util::Ipv4Addr(10, 9, 0, 77);
  filters.push_back(f);
  f = {};
  f.endpoint = util::Ipv4Addr(203, 0, 113, 200);  // Absent address.
  filters.push_back(f);
  f = {};
  f.tenant = "umbrella";
  f.verdict = static_cast<std::uint8_t>(shim::Verdict::kForward);
  f.source = static_cast<std::uint8_t>(shim::VerdictSource::kTable);
  filters.push_back(f);
  return filters;
}

TEST(FlowDbPrune, PruneOnAndOffAreByteIdentical) {
  // Single-file store: chunk-granularity pruning only.
  const auto writer = sample_writer(50'000, 0xFDB0201);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  const auto filters = canned_filters();
  for (std::size_t fi = 0; fi < filters.size(); ++fi) {
    flowdb::ScanOptions off;
    off.prune = false;
    const auto full = flowdb::scan(*reader, filters[fi], off);
    for (const unsigned threads : {1u, 2u, 4u}) {
      flowdb::ScanOptions on;
      on.threads = threads;
      EXPECT_EQ(flowdb::scan(*reader, filters[fi], on), full)
          << "filter " << fi << " at " << threads << " threads";
    }
  }
}

TEST(FlowDbPrune, ScanStatsAndCountersTrackPruning) {
  const auto writer = sample_writer(40'000, 0xFDB0202);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  flowdb::Filter unsatisfiable;
  unsatisfiable.since_usec = 1'000'000'000;  // Newer than every row.
  obs::MetricsRegistry metrics;
  flowdb::ScanStats stats;
  flowdb::ScanOptions options;
  options.stats = &stats;
  options.metrics = &metrics;
  EXPECT_TRUE(flowdb::scan(*reader, unsatisfiable, options).empty());
  EXPECT_EQ(stats.segments_considered, 1u);
  EXPECT_EQ(stats.segments_pruned, 1u);  // Zone map kills the whole file.
  EXPECT_EQ(stats.rows_scanned, 0u);
  EXPECT_EQ(metrics.counter("flowdb.scan.segments_pruned").value(), 1u);
  EXPECT_EQ(metrics.counter("flowdb.rows_scanned").value(), 0u);

  // A satisfiable window prunes some chunks but keeps the segment.
  flowdb::Filter window;
  window.since_usec = 1'000'000;
  window.until_usec = 2'000'000;
  stats = {};
  const auto matches = flowdb::scan(*reader, window, options);
  EXPECT_FALSE(matches.empty());
  EXPECT_EQ(stats.segments_scanned, 1u);
  EXPECT_GT(stats.chunks_pruned, 0u);
  EXPECT_GT(stats.chunks_scanned, 0u);
  EXPECT_EQ(stats.rows_matched, matches.size());
}

/// Property: the planner never prunes a zone that covers a matching
/// row. Random row populations (including inverted first/last stamps)
/// against random filters; whenever brute force finds a match, both
/// zone_may_match and the end-to-end pruned scan must agree.
TEST(FlowDbPrune, ZoneNeverPrunesAMatchingRow) {
  util::Rng rng(0xFDB0203);
  const char* tenants[] = {"", "acme", "umbrella", "tyrell", "hooli"};
  for (int round = 0; round < 120; ++round) {
    const std::size_t n = 1 + rng.below(400);
    flowdb::Writer writer;
    std::vector<flowdb::Row> rows;
    for (std::size_t i = 0; i < n; ++i) {
      auto row = sample_row(i, rng);
      row.tenant = tenants[rng.below(std::size(tenants))];
      row.first_usec = static_cast<std::int64_t>(rng.below(1'000'000));
      // One row in ten has last < first — a malformed stamp the zone
      // fold and planner must stay safe-side on.
      row.last_usec =
          rng.chance(0.1)
              ? row.first_usec - static_cast<std::int64_t>(rng.below(5000))
              : row.first_usec + static_cast<std::int64_t>(rng.below(50'000));
      rows.push_back(row);
      writer.add(std::move(row));
    }
    auto reader = flowdb::Reader::parse(writer.encode());
    ASSERT_TRUE(reader);

    for (int qi = 0; qi < 24; ++qi) {
      flowdb::Filter filter;
      if (rng.chance(0.4)) {
        filter.since_usec = static_cast<std::int64_t>(rng.below(1'200'000));
      }
      if (rng.chance(0.4)) {
        filter.until_usec = static_cast<std::int64_t>(rng.below(1'200'000));
      }
      if (rng.chance(0.3))
        filter.vlan = static_cast<std::uint16_t>(98 + rng.below(12));
      if (rng.chance(0.3)) filter.tenant = tenants[rng.below(5)];
      if (rng.chance(0.3)) {
        // Half the time an address actually present in some row.
        if (rng.chance(0.5) && !rows.empty()) {
          const auto& pick = rows[rng.below(rows.size())];
          filter.endpoint =
              rng.chance(0.5) ? pick.src.addr : pick.dst.addr;
        } else {
          filter.endpoint =
              util::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
        }
      }
      if (rng.chance(0.3))
        filter.port =
            static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : rng.below(65536));

      const auto matches_row = [&filter](const flowdb::Row& row) {
        if (filter.vlan && row.vlan != *filter.vlan) return false;
        if (filter.tenant && row.tenant != *filter.tenant) return false;
        if (filter.port && row.src.port != *filter.port &&
            row.dst.port != *filter.port)
          return false;
        if (filter.endpoint && row.src.addr != *filter.endpoint &&
            row.dst.addr != *filter.endpoint)
          return false;
        if (filter.since_usec && row.last_usec < *filter.since_usec)
          return false;
        if (filter.until_usec && row.first_usec > *filter.until_usec)
          return false;
        return true;
      };
      bool any = false;
      for (const auto& row : rows) any = any || matches_row(row);
      if (any) {
        EXPECT_TRUE(flowdb::zone_may_match(reader->zone(), filter))
            << "round " << round << " query " << qi
            << ": zone pruned a segment holding a matching row";
      }
      // End to end: pruning must not change the result, matching or not.
      flowdb::ScanOptions off;
      off.prune = false;
      EXPECT_EQ(flowdb::scan(*reader, filter), flowdb::scan(*reader, filter, off))
          << "round " << round << " query " << qi;
    }
  }
}

// --- Segmented store ------------------------------------------------------

std::string temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir.string();
}

TEST(FlowDbStore, SegmentedRoundTripMatchesMonolith) {
  const auto dir = temp_dir("flowdb_store_roundtrip");
  auto store = flowdb::SegmentedStore::open(dir);
  ASSERT_TRUE(store);
  // Same rows, split across three appends vs one monolithic writer.
  util::Rng rng(0xFDB0301);
  flowdb::Writer monolith;
  std::vector<flowdb::Row> rows;
  for (std::size_t seg = 0; seg < 3; ++seg) {
    flowdb::Writer part;
    for (std::size_t i = 0; i < 500; ++i) {
      auto row = sample_row(seg * 500 + i, rng);
      rows.push_back(row);
      monolith.add(row);
      part.add(std::move(row));
    }
    ASSERT_TRUE(store->append_segment(part));
  }
  ASSERT_EQ(store->manifest().segments.size(), 3u);

  auto seg_reader = flowdb::SegmentedReader::open(dir);
  ASSERT_TRUE(seg_reader);
  ASSERT_EQ(seg_reader->rows(), rows.size());
  auto mono_reader = flowdb::Reader::parse(monolith.encode());
  ASSERT_TRUE(mono_reader);

  // Row reconstruction across segment boundaries.
  for (const std::uint64_t i : {0ull, 499ull, 500ull, 1250ull, 1499ull}) {
    const auto row = seg_reader->row(i);
    ASSERT_TRUE(row);
    EXPECT_EQ(*row, rows[i]) << "row " << i;
  }
  EXPECT_FALSE(seg_reader->row(rows.size()));

  // Scans agree with the monolithic store on global ids, with pruning
  // on and off and across thread counts.
  for (const auto& filter : canned_filters()) {
    const auto mono = flowdb::scan(*mono_reader, filter);
    flowdb::ScanOptions off;
    off.prune = false;
    const auto full = seg_reader->scan(filter, off);
    ASSERT_TRUE(full);
    EXPECT_EQ(*full, mono);
    for (const unsigned threads : {1u, 2u, 4u}) {
      flowdb::ScanOptions on;
      on.threads = threads;
      const auto pruned = seg_reader->scan(filter, on);
      ASSERT_TRUE(pruned);
      EXPECT_EQ(*pruned, mono);
    }
  }

  // Aggregation merges across segments like the monolith.
  for (const auto group : {flowdb::GroupBy::kVerdict, flowdb::GroupBy::kTenant,
                           flowdb::GroupBy::kPolicy, flowdb::GroupBy::kTap}) {
    const auto seg_aggs = seg_reader->aggregate_all(group);
    ASSERT_TRUE(seg_aggs);
    const auto mono_aggs = flowdb::aggregate_all(*mono_reader, group);
    ASSERT_EQ(seg_aggs->size(), mono_aggs.size());
    for (std::size_t i = 0; i < mono_aggs.size(); ++i) {
      EXPECT_EQ((*seg_aggs)[i].label, mono_aggs[i].label);
      EXPECT_EQ((*seg_aggs)[i].flows, mono_aggs[i].flows);
      EXPECT_EQ((*seg_aggs)[i].packets, mono_aggs[i].packets);
      EXPECT_EQ((*seg_aggs)[i].bytes, mono_aggs[i].bytes);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(FlowDbStore, ManifestSerializeParseRoundTrip) {
  flowdb::StoreManifest manifest;
  manifest.segments.push_back({"segment-000001.fdb", 10, 2048,
                               0x0123456789abcdefull, 0xfedcba9876543210ull});
  manifest.segments.push_back({"segment-000007.fdb", 0, 160,
                               0xffffffffffffffffull, 0ull});
  const auto text = manifest.serialize();
  const auto parsed = flowdb::StoreManifest::parse(text);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->segments, manifest.segments);
  EXPECT_EQ(parsed->serialize(), text);
  EXPECT_EQ(parsed->total_rows(), 10u);
  EXPECT_EQ(parsed->total_bytes(), 2208u);
}

TEST(FlowDbStore, HostileManifestsRejected) {
  using flowdb::StoreManifest;
  EXPECT_FALSE(StoreManifest::parse(""));
  EXPECT_FALSE(StoreManifest::parse("gq-flowdb-store 1\n"));  // Old format.
  EXPECT_FALSE(StoreManifest::parse("gq-flowdb-store 3\n"));
  EXPECT_TRUE(StoreManifest::parse("gq-flowdb-store 2\n"));
  const char* hostile[] = {
      "segment ../../etc/passwd 1 1 0000000000000000 0000000000000000\n",
      "segment /abs/path.fdb 1 1 0000000000000000 0000000000000000\n",
      "segment .hidden.fdb 1 1 0000000000000000 0000000000000000\n",
      "segment -rf.fdb 1 1 0000000000000000 0000000000000000\n",
      "segment a.fdb x 1 0000000000000000 0000000000000000\n",
      "segment a.fdb 1 1 000000000000000 0000000000000000\n",   // Short hash.
      "segment a.fdb 1 1 000000000000000G 0000000000000000\n",  // Bad digit.
      "segment a.fdb 1 1 0000000000000000 000000000000000\n",   // Short zone.
      "segment a.fdb 1 1 0000000000000000 000000000000000G\n",  // Bad zone.
      "segment a.fdb 1 1 0000000000000000\n",   // Missing zone hash (v1 line).
      "segment a.fdb 1 1\n",                    // Missing fields.
      "segment a.fdb 1 1 0000000000000000 0000000000000000 extra\n",
      "segmen a.fdb 1 1 0000000000000000 0000000000000000\n",
      "segment a.fdb 1 1 0000000000000000 0000000000000000\n"
      "segment a.fdb 2 2 0000000000000000 0000000000000000\n",  // Duplicate.
  };
  for (const char* body : hostile) {
    EXPECT_FALSE(StoreManifest::parse(std::string("gq-flowdb-store 2\n") +
                                      body))
        << body;
  }
}

TEST(FlowDbStore, CompactionIsDeterministicAndPreservesGlobalIds) {
  const auto dir_a = temp_dir("flowdb_store_compact_a");
  const auto dir_b = temp_dir("flowdb_store_compact_b");
  const auto build = [](const std::string& dir) {
    auto store = flowdb::SegmentedStore::open(dir);
    EXPECT_TRUE(store);
    util::Rng rng(0xFDB0302);
    // Uneven segment sizes so the size-tiered pick has real choices.
    for (const std::size_t rows : {700u, 80u, 90u, 600u, 50u, 60u, 400u}) {
      flowdb::Writer part;
      for (std::size_t i = 0; i < rows; ++i) part.add(sample_row(i, rng));
      EXPECT_TRUE(store->append_segment(part));
    }
    return store;
  };
  auto store_a = build(dir_a);
  auto store_b = build(dir_b);

  const auto store_bytes = [](const std::string& dir,
                              const flowdb::StoreManifest& manifest) {
    std::string all = manifest.serialize();
    for (const auto& seg : manifest.segments) {
      std::ifstream in(dir + "/" + seg.file, std::ios::binary);
      all.append(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    }
    return all;
  };
  EXPECT_EQ(store_bytes(dir_a, store_a->manifest()),
            store_bytes(dir_b, store_b->manifest()));

  // Snapshot pre-compaction scan results (global ids).
  auto pre_reader = flowdb::SegmentedReader::open(dir_a);
  ASSERT_TRUE(pre_reader);
  const auto pre_total = pre_reader->rows();
  std::vector<std::vector<std::uint64_t>> pre;
  for (const auto& filter : canned_filters()) {
    auto matches = pre_reader->scan(filter);
    ASSERT_TRUE(matches);
    pre.push_back(std::move(*matches));
  }

  ASSERT_TRUE(store_a->compact_segments(3));
  ASSERT_TRUE(store_b->compact_segments(3));
  EXPECT_EQ(store_a->manifest().segments.size(), 3u);
  EXPECT_EQ(store_bytes(dir_a, store_a->manifest()),
            store_bytes(dir_b, store_b->manifest()));
  // Old segment files are gone; only manifest entries remain on disk.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_a))
    if (entry.path().extension() == ".fdb") ++files;
  EXPECT_EQ(files, 3u);

  // Adjacent-only merges preserve row order, so every global id —
  // and therefore every scan result — survives compaction unchanged.
  auto post_reader = flowdb::SegmentedReader::open(dir_a);
  ASSERT_TRUE(post_reader);
  EXPECT_EQ(post_reader->rows(), pre_total);
  const auto filters = canned_filters();
  for (std::size_t fi = 0; fi < filters.size(); ++fi) {
    const auto matches = post_reader->scan(filters[fi]);
    ASSERT_TRUE(matches);
    EXPECT_EQ(*matches, pre[fi]) << "filter " << fi;
  }
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(FlowDbStore, TamperedSegmentsNeverScanWrong) {
  const auto dir = temp_dir("flowdb_store_tamper");
  auto store = flowdb::SegmentedStore::open(dir);
  ASSERT_TRUE(store);
  ASSERT_TRUE(store->append_segment(sample_writer(128, 0xFDB0303)));
  const std::string seg_path =
      dir + "/" + store->manifest().segments[0].file;
  ASSERT_TRUE(flowdb::SegmentedReader::open(dir));
  const auto sealed = read_bytes(seg_path);
  ASSERT_GT(sealed.size(), 2001u);

  // Mid-file flip without resealing: the tail read at open still
  // matches the manifest, but mapping the segment fails the footer
  // recompute — the scan comes back nullopt, never a wrong answer.
  {
    auto tampered = sealed;
    tampered[2000] ^= 0x01;
    write_bytes(seg_path, tampered);
    auto reader = flowdb::SegmentedReader::open(dir);
    ASSERT_TRUE(reader);
    EXPECT_FALSE(reader->scan({}));
    EXPECT_FALSE(reader->row(0));
  }

  // In-place (NON-resealed) zone lie: rewrite zone bytes while leaving
  // the sealed footer untouched, so the tail read's footer check still
  // matches the manifest. If such a lie narrowed the bounds or cleared
  // bloom bits, the planner would prune the segment and the Reader's
  // recompute-verify would never run — the manifest's zone-hash pin
  // must catch it at open instead. Sweep the whole ZoneMap: the
  // min/max bound fields and every bloom byte.
  {
    flowdb::FileHeader header;
    std::memcpy(&header, sealed.data(), sizeof header);
    std::vector<std::size_t> offsets;
    for (std::size_t at = 8; at < sizeof(flowdb::ZoneMap); at += 7)
      offsets.push_back(at);  // Skip row_count; stride covers the bloom.
    for (const std::size_t at : offsets) {
      auto tampered = sealed;
      // Zeroing narrows time/vlan/port maxima and clears bloom bits —
      // exactly the "prune what actually matches" direction; flip if
      // the byte is already zero so the file always really changes.
      std::uint8_t& b = tampered[header.zone_offset + at];
      b = b == 0 ? 0xFF : 0;
      write_bytes(seg_path, tampered);
      EXPECT_FALSE(flowdb::SegmentedReader::open(dir))
          << "unresealed zone edit at +" << at << " was not detected";
    }
    // Same attack on a ChunkZone time bound (chunk pruning metadata).
    auto tampered = sealed;
    std::uint8_t& b =
        tampered[header.zone_offset + sizeof(flowdb::ZoneMap)];
    b = b == 0 ? 0xFF : 0;
    write_bytes(seg_path, tampered);
    EXPECT_FALSE(flowdb::SegmentedReader::open(dir));
  }

  // Footer-resealed zone lie: rewrite a zone byte AND recompute the
  // footer hash so the file is internally consistent. The manifest
  // pinned the original hash at append time, so the store refuses to
  // open — the planner can never trust the lying zone map.
  {
    auto tampered = sealed;
    flowdb::FileHeader header;
    std::memcpy(&header, tampered.data(), sizeof header);
    tampered[header.zone_offset + 64] ^= 0xFF;  // A bloom byte.
    const std::uint64_t resealed = flowdb::fnv1a(
        {tampered.data(), static_cast<std::size_t>(header.footer_offset)});
    std::memcpy(tampered.data() + header.footer_offset, &resealed, 8);
    write_bytes(seg_path, tampered);
    EXPECT_FALSE(flowdb::SegmentedReader::open(dir));
  }

  // Restoring the sealed bytes restores the store.
  write_bytes(seg_path, sealed);
  EXPECT_TRUE(flowdb::SegmentedReader::open(dir));
  std::filesystem::remove_all(dir);
}

TEST(FlowDbStore, ManifestReadFailureNeverClobbersStore) {
  const auto dir = temp_dir("flowdb_store_manifest_err");
  auto store = flowdb::SegmentedStore::open(dir);
  ASSERT_TRUE(store);
  ASSERT_TRUE(store->append_segment(sample_writer(64, 0xFDB0306)));
  const std::string manifest_path =
      dir + "/" + std::string(flowdb::kManifestName);
  const auto good = read_bytes(manifest_path);
  ASSERT_FALSE(good.empty());
  // Manifest rewrites are temp+rename: no .tmp stragglers afterwards.
  EXPECT_FALSE(std::filesystem::exists(manifest_path + ".tmp"));

  // A manifest that exists but cannot be read (here: it is a
  // directory, so reads fail with EISDIR) must fail the open — NOT be
  // treated as "no store yet" and overwritten with an empty manifest,
  // which would orphan every sealed segment.
  std::filesystem::remove(manifest_path);
  ASSERT_TRUE(std::filesystem::create_directory(manifest_path));
  EXPECT_FALSE(flowdb::SegmentedStore::open(dir));
  EXPECT_TRUE(std::filesystem::is_directory(manifest_path));
  std::filesystem::remove(manifest_path);

  // A corrupt (e.g. torn) manifest fails the open and is left intact
  // for the operator rather than silently replaced.
  const std::vector<std::uint8_t> torn(good.begin(),
                                       good.begin() + good.size() / 2);
  write_bytes(manifest_path, torn);
  EXPECT_FALSE(flowdb::SegmentedStore::open(dir));
  EXPECT_EQ(read_bytes(manifest_path), torn);

  // Restoring the manifest restores the store and its segment.
  write_bytes(manifest_path, good);
  auto reopened = flowdb::SegmentedStore::open(dir);
  ASSERT_TRUE(reopened);
  EXPECT_EQ(reopened->manifest().segments.size(), 1u);
  auto reader = flowdb::SegmentedReader::open(dir);
  ASSERT_TRUE(reader);
  EXPECT_EQ(reader->rows(), 64u);
  std::filesystem::remove_all(dir);
}

TEST(FlowDbStore, EmptyAppendIsNoOpAndEmptyStoreScans) {
  const auto dir = temp_dir("flowdb_store_empty");
  auto store = flowdb::SegmentedStore::open(dir);
  ASSERT_TRUE(store);
  flowdb::Writer empty;
  EXPECT_TRUE(store->append_segment(empty));  // Zero rows: no segment.
  EXPECT_TRUE(store->manifest().segments.empty());
  auto reader = flowdb::SegmentedReader::open(dir);
  ASSERT_TRUE(reader);
  EXPECT_EQ(reader->rows(), 0u);
  const auto matches = reader->scan({});
  ASSERT_TRUE(matches);
  EXPECT_TRUE(matches->empty());
  // Reopening an existing store continues the sequence numbering.
  ASSERT_TRUE(store->append_segment(sample_writer(16, 0xFDB0304)));
  auto reopened = flowdb::SegmentedStore::open(dir);
  ASSERT_TRUE(reopened);
  ASSERT_TRUE(reopened->append_segment(sample_writer(16, 0xFDB0305)));
  ASSERT_EQ(reopened->manifest().segments.size(), 2u);
  EXPECT_NE(reopened->manifest().segments[0].file,
            reopened->manifest().segments[1].file);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gq
