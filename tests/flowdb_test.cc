// FlowDB store + query engine coverage (src/flowdb). The FlowDbSmoke
// suite doubles as the `flowdb_smoke` ctest lane: encode/parse/open
// round trips, predicate scans checked against brute force over
// reconstructed rows, the serial-vs-parallel bit-identity contract at
// 1/2/4 threads, aggregation kernels, and the verdict-distribution
// diff gate. FlowDbReject covers the load-time rejection contract:
// corrupt footers, truncation, and self-declared-length lies must all
// come back nullopt, never a crash or over-read.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "flowdb/flowdb.h"
#include "flowdb/query.h"
#include "obs/metrics.h"
#include "trace/flow_index.h"
#include "util/rng.h"

namespace gq {
namespace {

flowdb::Row sample_row(std::uint64_t i, util::Rng& rng) {
  flowdb::Row row;
  row.proto = rng.chance(0.7) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
  row.src = {util::Ipv4Addr(10, 9, 0, static_cast<std::uint8_t>(i % 200)),
             static_cast<std::uint16_t>(1024 + rng.below(60000))};
  row.dst = {util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
             static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 25)};
  row.vlan = static_cast<std::uint16_t>(100 + rng.below(8));
  const char* tenants[] = {"", "acme", "umbrella", "tyrell"};
  row.tenant = tenants[rng.below(4)];
  row.job = rng.below(32);
  if (rng.chance(0.8)) {
    row.verdict = static_cast<std::uint8_t>(1 + rng.below(6));
    row.source = static_cast<std::uint8_t>(rng.below(3));
    row.policy = rng.chance(0.5) ? "quarantine" : "default";
  }
  row.tap = rng.chance(0.5) ? "upstream" : "job-tap";
  row.packets = 1 + rng.below(100);
  row.bytes = row.packets * (60 + rng.below(1400));
  row.first_usec = static_cast<std::int64_t>(i) * 500;
  row.last_usec = row.first_usec + static_cast<std::int64_t>(rng.below(10000));
  const auto locs = rng.below(4);
  for (std::uint64_t l = 0; l < locs; ++l)
    row.locations.push_back({rng.below(8), rng.below(4096)});
  return row;
}

flowdb::Writer sample_writer(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  flowdb::Writer writer;
  for (std::size_t i = 0; i < rows; ++i) writer.add(sample_row(i, rng));
  return writer;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FlowDbSmoke, EncodeParseRoundTripPreservesEveryRow) {
  util::Rng rng(0xFDB0001);
  flowdb::Writer writer;
  std::vector<flowdb::Row> originals;
  for (std::size_t i = 0; i < 512; ++i) {
    originals.push_back(sample_row(i, rng));
    writer.add(originals.back());
  }
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  ASSERT_EQ(reader->rows(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i)
    EXPECT_EQ(reader->row(i), originals[i]) << "row " << i;
}

TEST(FlowDbSmoke, MmapOpenMatchesInMemoryParse) {
  const auto writer = sample_writer(256, 0xFDB0002);
  const auto bytes = writer.encode();
  const auto path = temp_path("flowdb_test_open.fdb");
  ASSERT_TRUE(writer.save(path));
  auto mapped = flowdb::Reader::open(path);
  auto parsed = flowdb::Reader::parse(bytes);
  ASSERT_TRUE(mapped);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(mapped->rows(), parsed->rows());
  EXPECT_EQ(mapped->file_bytes(), bytes.size());
  for (std::uint64_t i = 0; i < mapped->rows(); ++i)
    ASSERT_EQ(mapped->row(i), parsed->row(i)) << "row " << i;
  std::filesystem::remove(path);
}

TEST(FlowDbSmoke, EncodeIsDeterministic) {
  EXPECT_EQ(sample_writer(300, 0xFDB0003).encode(),
            sample_writer(300, 0xFDB0003).encode());
}

TEST(FlowDbSmoke, ScanPredicatesMatchBruteForce) {
  const auto writer = sample_writer(20'000, 0xFDB0004);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);

  std::vector<flowdb::Filter> filters;
  flowdb::Filter f;
  f.verdict = static_cast<std::uint8_t>(shim::Verdict::kDrop);
  filters.push_back(f);
  f = {};
  f.verdict = 0;  // Never-annotated flows.
  filters.push_back(f);
  f = {};
  f.tenant = "acme";
  filters.push_back(f);
  f = {};
  f.tenant = "no-such-tenant";  // Absent from dictionary: matches nothing.
  filters.push_back(f);
  f = {};
  f.port = 80;
  filters.push_back(f);
  f = {};
  f.prefix = util::Ipv4Net(util::Ipv4Addr(10, 9, 0, 0), 16);
  filters.push_back(f);
  f = {};
  f.since_usec = 1'000'000;
  f.until_usec = 3'000'000;
  filters.push_back(f);
  f = {};
  f.proto = pkt::FlowProto::kUdp;
  f.vlan = 103;
  filters.push_back(f);
  f = {};
  f.tenant = "umbrella";
  f.verdict = static_cast<std::uint8_t>(shim::Verdict::kForward);
  f.source = static_cast<std::uint8_t>(shim::VerdictSource::kTable);
  filters.push_back(f);

  for (std::size_t fi = 0; fi < filters.size(); ++fi) {
    const auto& filter = filters[fi];
    const auto matches = flowdb::scan(*reader, filter);
    // Brute force over reconstructed rows.
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < reader->rows(); ++i) {
      const auto row = reader->row(i);
      if (filter.verdict && row.verdict != *filter.verdict) continue;
      if (filter.source && (row.verdict == 0 || row.source != *filter.source))
        continue;
      if (filter.tenant && row.tenant != *filter.tenant) continue;
      if (filter.port && row.src.port != *filter.port &&
          row.dst.port != *filter.port)
        continue;
      if (filter.prefix && !filter.prefix->contains(row.src.addr) &&
          !filter.prefix->contains(row.dst.addr))
        continue;
      if (filter.vlan && row.vlan != *filter.vlan) continue;
      if (filter.proto && row.proto != *filter.proto) continue;
      if (filter.since_usec && row.last_usec < *filter.since_usec) continue;
      if (filter.until_usec && row.first_usec > *filter.until_usec) continue;
      expected.push_back(i);
    }
    EXPECT_EQ(matches, expected) << "filter " << fi;
  }
}

TEST(FlowDbSmoke, ParallelScanBitIdenticalAt124Threads) {
  // > kScanChunk rows so the parallel path actually splits chunks.
  const auto writer = sample_writer(50'000, 0xFDB0005);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  flowdb::Filter filter;
  filter.port = 80;
  const auto serial = flowdb::scan(*reader, filter);
  EXPECT_FALSE(serial.empty());
  for (const unsigned threads : {2u, 4u}) {
    flowdb::ScanOptions options;
    options.threads = threads;
    EXPECT_EQ(flowdb::scan(*reader, filter, options), serial)
        << threads << " threads";
  }
}

TEST(FlowDbSmoke, AggregatesMatchBruteForce) {
  const auto writer = sample_writer(10'000, 0xFDB0006);
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  for (const auto group :
       {flowdb::GroupBy::kVerdict, flowdb::GroupBy::kTenant,
        flowdb::GroupBy::kPolicy, flowdb::GroupBy::kTap}) {
    const auto aggs = flowdb::aggregate_all(*reader, group);
    std::uint64_t flows = 0, packets = 0, bytes = 0;
    for (const auto& agg : aggs) {
      flows += agg.flows;
      packets += agg.packets;
      bytes += agg.bytes;
      EXPECT_FALSE(agg.label.empty());
    }
    EXPECT_EQ(flows, reader->rows());
    std::uint64_t want_packets = 0, want_bytes = 0;
    for (const auto p : reader->packets()) want_packets += p;
    for (const auto b : reader->bytes()) want_bytes += b;
    EXPECT_EQ(packets, want_packets);
    EXPECT_EQ(bytes, want_bytes);
    // Label-sorted, no duplicates.
    for (std::size_t i = 1; i < aggs.size(); ++i)
      EXPECT_LT(aggs[i - 1].label, aggs[i].label);
  }
}

TEST(FlowDbSmoke, DiffVerdictsGatesPerturbedDistributions) {
  const auto base = sample_writer(8'000, 0xFDB0007);
  auto a = flowdb::Reader::parse(base.encode());
  auto b = flowdb::Reader::parse(base.encode());
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  // Same store: identical distribution, zero delta.
  EXPECT_TRUE(flowdb::diff_verdicts(*a, *b).within(0.0));

  // Perturb: force every verdict to kDrop.
  util::Rng rng(0xFDB0007);
  flowdb::Writer perturbed;
  for (std::size_t i = 0; i < 8'000; ++i) {
    auto row = sample_row(i, rng);
    row.verdict = static_cast<std::uint8_t>(shim::Verdict::kDrop);
    row.source = static_cast<std::uint8_t>(shim::VerdictSource::kShim);
    perturbed.add(std::move(row));
  }
  auto c = flowdb::Reader::parse(perturbed.encode());
  ASSERT_TRUE(c);
  const auto diff = flowdb::diff_verdicts(*a, *c);
  EXPECT_FALSE(diff.within(0.02));
  EXPECT_GT(diff.max_delta, 0.1);
}

TEST(FlowDbSmoke, TenantJobCarryFromArchiveIntoStore) {
  trace::FlowIndex index;
  for (int i = 0; i < 10; ++i) {
    trace::FlowRecord record;
    record.key.proto = pkt::FlowProto::kTcp;
    record.key.src = {util::Ipv4Addr(10, 9, 0, 1), std::uint16_t(1000 + i)};
    record.key.dst = {util::Ipv4Addr(192, 150, 187, 12), 80};
    record.tenant = i % 2 ? "acme" : "umbrella";
    record.job = 40 + i;
    record.packets = 3;
    record.bytes = 300;
    if (i % 3 == 0) {
      record.has_verdict = true;
      record.verdict = shim::Verdict::kRewrite;
      record.verdict_source = shim::VerdictSource::kTable;
      record.policy_name = "tables";
    }
    index.restore(std::move(record));
  }
  flowdb::Writer writer;
  writer.add_index(index, "job-tap");
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  flowdb::Filter by_tenant;
  by_tenant.tenant = "acme";
  EXPECT_EQ(flowdb::scan(*reader, by_tenant).size(), 5u);
  flowdb::Filter by_job;
  by_job.job = 43;
  const auto match = flowdb::scan(*reader, by_job);
  ASSERT_EQ(match.size(), 1u);
  EXPECT_EQ(reader->row(match[0]).tenant, "acme");
  flowdb::Filter by_source;
  by_source.source = static_cast<std::uint8_t>(shim::VerdictSource::kTable);
  EXPECT_EQ(flowdb::scan(*reader, by_source).size(), 4u);
}

TEST(FlowDbSmoke, WriterPublishesMetrics) {
  obs::MetricsRegistry metrics;
  util::Rng rng(0xFDB0008);
  flowdb::Writer writer(&metrics);
  for (std::size_t i = 0; i < 32; ++i) writer.add(sample_row(i, rng));
  const auto bytes = writer.encode();
  EXPECT_EQ(metrics.counter("flowdb.rows_written").value(), 32u);
  EXPECT_EQ(metrics.counter("flowdb.bytes_written").value(), bytes.size());
  flowdb::ScanOptions options;
  options.metrics = &metrics;
  auto reader = flowdb::Reader::parse(bytes);
  ASSERT_TRUE(reader);
  flowdb::scan(*reader, {}, options);
  EXPECT_EQ(metrics.counter("flowdb.scans").value(), 1u);
  EXPECT_EQ(metrics.counter("flowdb.rows_scanned").value(), 32u);
  EXPECT_EQ(metrics.counter("flowdb.rows_matched").value(), 32u);
}

// --- Rejection contract ---------------------------------------------------

TEST(FlowDbReject, CorruptFooterHashRejected) {
  auto bytes = sample_writer(64, 0xFDB0101).encode();
  // Flip one payload byte: the footer hash no longer matches.
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(flowdb::Reader::parse(std::move(bytes)));
}

TEST(FlowDbReject, TruncationAlwaysRejected) {
  const auto bytes = sample_writer(64, 0xFDB0102).encode();
  util::Rng rng(0xFDB0102);
  for (int i = 0; i < 200; ++i) {
    const auto cut = rng.below(bytes.size());  // Strictly shorter.
    EXPECT_FALSE(flowdb::Reader::parse(
        {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)}))
        << "prefix " << cut;
  }
}

TEST(FlowDbReject, SelfDeclaredLengthLiesRejected) {
  // Corrupt individual header fields, then re-seal the footer hash so
  // only the header validation (not the integrity check) can catch it.
  const auto pristine = sample_writer(64, 0xFDB0103).encode();
  const auto reseal = [](std::vector<std::uint8_t> bytes) {
    const std::uint64_t footer_offset = bytes.size() - 16;
    const std::uint64_t hash =
        flowdb::fnv1a({bytes.data(), footer_offset});
    std::memcpy(bytes.data() + footer_offset, &hash, 8);
    return bytes;
  };
  const auto poke_u64 = [&](std::size_t offset, std::uint64_t value) {
    auto bytes = pristine;
    std::memcpy(bytes.data() + offset, &value, 8);
    return reseal(std::move(bytes));
  };
  // FileHeader field offsets (see flowdb.h): row_count @16,
  // columns_offset @24, dict_offset @32, dict_count @40, blob_offset
  // @48, blob_bytes @56, loc_offset @64, loc_count @72,
  // footer_offset @80.
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(16, 1ull << 40)))
      << "row_count lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(24, pristine.size() * 2)))
      << "columns_offset lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(24, 12)))
      << "misaligned columns_offset";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(32, pristine.size() * 2)))
      << "dict_offset lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(40, 1ull << 40)))
      << "dict_count lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(56, 1ull << 40)))
      << "blob_bytes lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(72, 1ull << 40)))
      << "loc_count lie";
  EXPECT_FALSE(flowdb::Reader::parse(poke_u64(80, pristine.size())))
      << "footer_offset lie";
  // Control: resealing without corruption still parses.
  EXPECT_TRUE(flowdb::Reader::parse(reseal(pristine)));
}

TEST(FlowDbReject, BadMagicAndVersionRejected) {
  const auto pristine = sample_writer(8, 0xFDB0104).encode();
  {
    auto bytes = pristine;
    bytes[0] ^= 0xFF;
    EXPECT_FALSE(flowdb::Reader::parse(std::move(bytes)));
  }
  {
    auto bytes = pristine;
    bytes[8] = 0x7F;  // version
    EXPECT_FALSE(flowdb::Reader::parse(std::move(bytes)));
  }
  EXPECT_FALSE(flowdb::Reader::parse({}));
  EXPECT_FALSE(flowdb::Reader::open(temp_path("flowdb_no_such_store.fdb")));
}

TEST(FlowDbReject, LyingLocationsAreClampedNotOverRead) {
  // A row whose loc_start/loc_count point past the shared location
  // array must come back clamped (possibly empty), never over-read.
  flowdb::Writer writer;
  util::Rng rng(0xFDB0105);
  for (std::size_t i = 0; i < 4; ++i) writer.add(sample_row(i, rng));
  auto bytes = writer.encode();
  auto pristine = flowdb::Reader::parse(bytes);
  ASSERT_TRUE(pristine);
  for (std::uint64_t i = 0; i < pristine->rows(); ++i) {
    const auto locs = pristine->locations_of(i);
    EXPECT_LE(locs.size(), 3u);
  }
  EXPECT_TRUE(pristine->locations_of(999).empty());
}

TEST(FlowDbSmoke, EmptyStoreRoundTrips) {
  flowdb::Writer writer;
  auto reader = flowdb::Reader::parse(writer.encode());
  ASSERT_TRUE(reader);
  EXPECT_EQ(reader->rows(), 0u);
  EXPECT_TRUE(flowdb::scan(*reader, {}).empty());
  EXPECT_TRUE(flowdb::aggregate_all(*reader, flowdb::GroupBy::kVerdict)
                  .empty());
}

}  // namespace
}  // namespace gq
