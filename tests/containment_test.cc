// Unit tests for the containment module: trigger grammar and engine,
// the Figure 6 configuration format, the sample library, the policy
// registry, and the decision logic of the built-in family policies.
#include <gtest/gtest.h>

#include "containment/config.h"
#include "containment/policies.h"
#include "containment/policy.h"
#include "containment/samples.h"
#include "containment/trigger.h"
#include "util/strings.h"

namespace gq::cs {
namespace {

using util::Endpoint;
using util::Ipv4Addr;

// --- FlowPattern / Trigger grammar -------------------------------------

TEST(FlowPattern, ParseAndMatch) {
  auto pattern = FlowPattern::parse("*:25/tcp");
  ASSERT_TRUE(pattern);
  EXPECT_TRUE(pattern->matches({Ipv4Addr(1, 2, 3, 4), 25},
                               pkt::FlowProto::kTcp));
  EXPECT_FALSE(pattern->matches({Ipv4Addr(1, 2, 3, 4), 80},
                                pkt::FlowProto::kTcp));
  EXPECT_FALSE(pattern->matches({Ipv4Addr(1, 2, 3, 4), 25},
                                pkt::FlowProto::kUdp));
}

TEST(FlowPattern, AddressGlobAndWildcards) {
  auto pattern = FlowPattern::parse("10.3.*:*/*");
  ASSERT_TRUE(pattern);
  EXPECT_TRUE(pattern->matches({Ipv4Addr(10, 3, 1, 4), 9999},
                               pkt::FlowProto::kUdp));
  EXPECT_FALSE(pattern->matches({Ipv4Addr(10, 4, 1, 4), 9999},
                                pkt::FlowProto::kUdp));
}

TEST(FlowPattern, RejectsMalformed) {
  EXPECT_FALSE(FlowPattern::parse(""));
  EXPECT_FALSE(FlowPattern::parse("no-colon/tcp"));
  EXPECT_FALSE(FlowPattern::parse("*:25"));
  EXPECT_FALSE(FlowPattern::parse("*:99999/tcp"));
  EXPECT_FALSE(FlowPattern::parse("*:25/icmp"));
}

TEST(Trigger, ParsesPaperSyntax) {
  auto trigger = Trigger::parse("*:25/tcp / 30min < 1 -> revert");
  ASSERT_TRUE(trigger);
  EXPECT_EQ(trigger->window, util::minutes(30));
  EXPECT_EQ(trigger->cmp, Comparison::kLess);
  EXPECT_EQ(trigger->threshold, 1);
  EXPECT_EQ(trigger->action, LifecycleAction::kRevert);
  EXPECT_EQ(trigger->pattern.port, 25);
}

TEST(Trigger, ParsesVariants) {
  EXPECT_TRUE(Trigger::parse("1.2.3.4:80/udp / 5s >= 100 -> terminate"));
  EXPECT_TRUE(Trigger::parse("*:*/* / 2h > 10 -> reboot"));
  EXPECT_FALSE(Trigger::parse("*:25/tcp 30min < 1 -> revert"));  // No sep.
  EXPECT_FALSE(Trigger::parse("*:25/tcp / 30min < 1 -> explode"));
  EXPECT_FALSE(Trigger::parse("*:25/tcp / 30parsecs < 1 -> revert"));
}

TEST(TriggerEngine, AbsenceTriggerFiresAfterQuietWindow) {
  TriggerEngine engine;
  engine.add(16, 19, *Trigger::parse("*:25/tcp / 30min < 1 -> revert"));
  util::TimePoint t{};
  engine.inmate_started(17, t);

  // Activity within every window: no firing.
  for (int i = 1; i <= 5; ++i) {
    engine.observe_flow(17, {Ipv4Addr(1, 1, 1, 1), 25}, pkt::FlowProto::kTcp,
                        t + util::minutes(10 * i));
  }
  EXPECT_TRUE(engine.evaluate(t + util::minutes(55)).empty());

  // Then one hour of silence: the trigger fires exactly once.
  auto firings = engine.evaluate(t + util::minutes(55) + util::minutes(31));
  ASSERT_EQ(firings.size(), 1u);
  EXPECT_EQ(firings[0].vlan, 17);
  EXPECT_EQ(firings[0].action, LifecycleAction::kRevert);
  EXPECT_TRUE(engine.evaluate(t + util::hours(3)).empty());  // Disarmed.
}

TEST(TriggerEngine, NotBeforeFirstFullWindow) {
  TriggerEngine engine;
  engine.add(5, 5, *Trigger::parse("*:25/tcp / 30min < 1 -> revert"));
  util::TimePoint t{};
  engine.inmate_started(5, t);
  // 20 minutes in, no activity — but the first window hasn't elapsed.
  EXPECT_TRUE(engine.evaluate(t + util::minutes(20)).empty());
  // 31 minutes in with no activity: fires.
  EXPECT_EQ(engine.evaluate(t + util::minutes(31)).size(), 1u);
}

TEST(TriggerEngine, RearmsOnRestart) {
  TriggerEngine engine;
  engine.add(5, 5, *Trigger::parse("*:25/tcp / 10min < 1 -> revert"));
  util::TimePoint t{};
  engine.inmate_started(5, t);
  EXPECT_EQ(engine.evaluate(t + util::minutes(11)).size(), 1u);
  engine.inmate_started(5, t + util::minutes(12));
  EXPECT_TRUE(engine.evaluate(t + util::minutes(13)).empty());
  EXPECT_EQ(engine.evaluate(t + util::minutes(23)).size(), 1u);
}

TEST(TriggerEngine, RateTriggerFires) {
  // "terminate an inmate sending a recipient too many connections/min".
  TriggerEngine engine;
  engine.add(5, 5, *Trigger::parse("9.9.9.9:25/tcp / 1min > 50 -> terminate"));
  util::TimePoint t{};
  engine.inmate_started(5, t);
  for (int i = 0; i < 60; ++i) {
    engine.observe_flow(5, {Ipv4Addr(9, 9, 9, 9), 25}, pkt::FlowProto::kTcp,
                        t + util::minutes(2) + util::seconds(i));
  }
  auto firings = engine.evaluate(t + util::minutes(3));
  ASSERT_EQ(firings.size(), 1u);
  EXPECT_EQ(firings[0].action, LifecycleAction::kTerminate);
}

TEST(TriggerEngine, VlanScoping) {
  TriggerEngine engine;
  engine.add(16, 17, *Trigger::parse("*:25/tcp / 10min < 1 -> revert"));
  util::TimePoint t{};
  engine.inmate_started(18, t);  // Outside the range: never tracked.
  EXPECT_TRUE(engine.evaluate(t + util::hours(1)).empty());
}

// --- ContainmentConfig --------------------------------------------------

constexpr const char* kFigure6 = R"(
[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543

[BannerSmtpSink]
Address = 10.3.1.4
Port = 2526
)";

TEST(ContainmentConfig, ParsesFigure6) {
  auto config = ContainmentConfig::parse(kFigure6);
  ASSERT_EQ(config.bindings.size(), 2u);
  EXPECT_EQ(config.bindings[0].range.first, 16);
  EXPECT_EQ(config.bindings[0].range.last, 17);
  EXPECT_EQ(config.bindings[0].decider, "Rustock");
  EXPECT_EQ(config.bindings[0].infection_glob, "rustock.100921.*.exe");
  EXPECT_EQ(config.bindings[1].decider, "Grum");

  ASSERT_EQ(config.triggers.size(), 1u);
  EXPECT_EQ(config.triggers[0].range.first, 16);
  EXPECT_EQ(config.triggers[0].range.last, 19);
  EXPECT_EQ(config.triggers[0].trigger.action, LifecycleAction::kRevert);

  ASSERT_EQ(config.services.size(), 2u);
  EXPECT_EQ(config.services.at("autoinfect").str(), "10.9.8.7:6543");
  EXPECT_EQ(config.services.at("bannersmtpsink").port, 2526);

  ASSERT_TRUE(config.binding_for(17));
  EXPECT_EQ(config.binding_for(17)->decider, "Rustock");
  ASSERT_TRUE(config.binding_for(19));
  EXPECT_EQ(config.binding_for(19)->decider, "Grum");
  EXPECT_FALSE(config.binding_for(20));
}

TEST(ContainmentConfig, SingleVlanSection) {
  auto config = ContainmentConfig::parse("[VLAN 7]\nDecider = Storm\n");
  ASSERT_EQ(config.bindings.size(), 1u);
  EXPECT_EQ(config.bindings[0].range.first, 7);
  EXPECT_EQ(config.bindings[0].range.last, 7);
}

TEST(ContainmentConfig, MalformedTriggerThrows) {
  EXPECT_THROW(
      ContainmentConfig::parse("[VLAN 1]\nTrigger = garbage -> revert\n"),
      std::runtime_error);
}

TEST(ContainmentConfig, MalformedServiceThrows) {
  EXPECT_THROW(
      ContainmentConfig::parse("[Sink]\nAddress = not-an-ip\nPort = 25\n"),
      std::runtime_error);
}

// --- SampleLibrary --------------------------------------------------------

TEST(SampleLibrary, BatchGlobAndHashes) {
  SampleLibrary library;
  for (int i = 0; i < 3; ++i)
    library.add(util::format("rustock.100921.%03d.exe", i));
  library.add("grum.100818.000.exe");

  auto batch = library.match("rustock.100921.*.exe");
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], "rustock.100921.000.exe");

  auto md5a = library.md5("rustock.100921.000.exe");
  auto md5b = library.md5("rustock.100921.001.exe");
  ASSERT_TRUE(md5a && md5b);
  EXPECT_NE(*md5a, *md5b);
  EXPECT_EQ(md5a->size(), 32u);
  EXPECT_FALSE(library.md5("unknown.exe"));

  auto payload = library.payload("grum.100818.000.exe");
  ASSERT_TRUE(payload);
  // The payload leads with the sample name (the inmate's behaviour
  // factory keys on it).
  EXPECT_EQ(payload->substr(0, payload->find('\n')), "grum.100818.000.exe");
}

// --- Policies ----------------------------------------------------------------

PolicyEnv test_env() {
  PolicyEnv env;
  env.services["sink"] = {Ipv4Addr(10, 3, 0, 9), 9999};
  env.services["smtpsink"] = {Ipv4Addr(10, 3, 0, 10), 2525};
  env.services["bannersmtpsink"] = {Ipv4Addr(10, 3, 1, 4), 2526};
  env.services["autoinfect"] = {Ipv4Addr(10, 9, 8, 7), 6543};
  return env;
}

FlowInfo flow_to(Endpoint dst, std::uint16_t vlan = 16) {
  FlowInfo info;
  info.shim.orig = {Ipv4Addr(10, 0, 0, 23), 1234};
  info.shim.resp = dst;
  info.shim.vlan = vlan;
  return info;
}

TEST(Policies, RegistryHasBuiltins) {
  register_builtin_policies();
  auto& registry = PolicyRegistry::instance();
  for (const char* name :
       {"DefaultDeny", "SinkAll", "Rustock", "Grum", "Waledac",
        "WaledacTest", "Storm", "MegaD", "Clickbot", "WormFarm"}) {
    EXPECT_TRUE(registry.create(name, test_env())) << name;
  }
  EXPECT_FALSE(registry.create("NoSuchPolicy", test_env()));
}

TEST(Policies, DefaultDenyDropsEverything) {
  Policy policy("DefaultDeny");
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(8, 8, 8, 8), 53})).verdict,
            shim::Verdict::kDrop);
}

TEST(Policies, SinkAllReflectsToSink) {
  auto env = test_env();
  SinkAllPolicy policy(env);
  auto decision = policy.decide(flow_to({Ipv4Addr(7, 7, 7, 7), 6667}));
  EXPECT_EQ(decision.verdict, shim::Verdict::kReflect);
  EXPECT_EQ(decision.target.str(), "10.3.0.9:9999");
}

TEST(Policies, SinkAllWithoutSinkDrops) {
  PolicyEnv env;  // No services at all.
  SinkAllPolicy policy(env);
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(7, 7, 7, 7), 80})).verdict,
            shim::Verdict::kDrop);
}

TEST(Policies, RustockMatrix) {
  auto env = test_env();
  RustockPolicy policy(env);
  // HTTPS C&C forwarded.
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(5, 5, 5, 5), 443})).verdict,
            shim::Verdict::kForward);
  // HTTP rewritten (C&C filtering).
  auto http = policy.decide(flow_to({Ipv4Addr(5, 5, 5, 5), 80}));
  EXPECT_EQ(http.verdict, shim::Verdict::kRewrite);
  EXPECT_TRUE(policy.make_rewrite_handler(
      flow_to({Ipv4Addr(5, 5, 5, 5), 80})));
  // SMTP reflected to the simple sink.
  auto smtp = policy.decide(flow_to({Ipv4Addr(5, 5, 5, 5), 25}));
  EXPECT_EQ(smtp.verdict, shim::Verdict::kReflect);
  EXPECT_EQ(smtp.target.port, 2525);
  // Anything else sinks.
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(5, 5, 5, 5), 6667})).verdict,
            shim::Verdict::kReflect);
  // Auto-infection flows get the REWRITE impersonation.
  auto infect = policy.decide(flow_to({Ipv4Addr(10, 9, 8, 7), 6543}));
  EXPECT_EQ(infect.verdict, shim::Verdict::kRewrite);
}

TEST(Policies, GrumUsesBannerSink) {
  auto env = test_env();
  GrumPolicy policy(env);
  auto smtp = policy.decide(flow_to({Ipv4Addr(5, 5, 5, 5), 25}, 18));
  EXPECT_EQ(smtp.verdict, shim::Verdict::kReflect);
  EXPECT_EQ(smtp.target.port, 2526);  // Banner-grabbing sink.
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(5, 5, 5, 5), 80}, 18)).verdict,
            shim::Verdict::kForward);
}

TEST(Policies, WaledacTestAllowsExactlyOneTestMessage) {
  auto env = test_env();
  WaledacPolicy policy(env, /*allow_test_smtp=*/true);
  auto first = policy.decide(flow_to({Ipv4Addr(64, 233, 1, 1), 25}, 30));
  EXPECT_EQ(first.verdict, shim::Verdict::kForward);
  auto second = policy.decide(flow_to({Ipv4Addr(64, 233, 1, 1), 25}, 30));
  EXPECT_EQ(second.verdict, shim::Verdict::kReflect);
  // Another inmate gets its own one-shot.
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(64, 233, 1, 1), 25}, 31)).verdict,
            shim::Verdict::kForward);
}

TEST(Policies, WaledacStrictNeverForwardsSmtp) {
  auto env = test_env();
  WaledacPolicy policy(env, /*allow_test_smtp=*/false);
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(64, 233, 1, 1), 25})).verdict,
            shim::Verdict::kReflect);
}

TEST(Policies, StormSinksFtp) {
  auto env = test_env();
  StormPolicy policy(env);
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(5, 5, 5, 5), 80})).verdict,
            shim::Verdict::kForward);
  // The iframe-injection FTP attempt: caught by the sink reflection.
  auto ftp = policy.decide(flow_to({Ipv4Addr(20, 1, 2, 3), 21}));
  EXPECT_EQ(ftp.verdict, shim::Verdict::kReflect);
  EXPECT_EQ(ftp.target.str(), "10.3.0.9:9999");
}

TEST(Policies, WormFarmRedirectsRoundRobin) {
  auto env = test_env();
  InlinePolicyServices services;
  services.list_inmates_fn = [] {
    return PolicyServices::InmateList{
        {20, Ipv4Addr(10, 0, 0, 10)},
        {21, Ipv4Addr(10, 0, 0, 11)},
        {22, Ipv4Addr(10, 0, 0, 12)},
    };
  };
  env.backend = &services;
  WormFarmPolicy policy(env);
  auto info = flow_to({Ipv4Addr(99, 1, 2, 3), 445}, 20);
  auto first = policy.decide(info);
  EXPECT_EQ(first.verdict, shim::Verdict::kRedirect);
  EXPECT_EQ(first.target.port, 445);       // Port preserved.
  EXPECT_NE(first.target.addr.value(),
            Ipv4Addr(10, 0, 0, 10).value());  // Never back to self.
  // Same scanned address again: sticky (multi-connection exploits must
  // land on the same victim).
  auto again = policy.decide(info);
  EXPECT_EQ(first.target.addr, again.target.addr);
  // A different scanned address rotates to the next victim.
  auto other = policy.decide(flow_to({Ipv4Addr(99, 1, 2, 4), 445}, 20));
  EXPECT_NE(first.target.addr, other.target.addr);
}

TEST(Policies, WormFarmDropsWithoutVictims) {
  auto env = test_env();
  InlinePolicyServices services;
  services.list_inmates_fn = [] {
    return PolicyServices::InmateList{
        {20, Ipv4Addr(10, 0, 0, 10)}};  // Only the originator itself.
  };
  env.backend = &services;
  WormFarmPolicy policy(env);
  EXPECT_EQ(policy.decide(flow_to({Ipv4Addr(99, 1, 2, 3), 445}, 20)).verdict,
            shim::Verdict::kDrop);
}

}  // namespace
}  // namespace gq::cs
